// Link-level duplication: the model's links are reliable but not at-most-
// once; every protocol in the library must be idempotent under duplicated
// deliveries (collectors dedupe senders per round, RB voter sets dedupe,
// witness report acceptance is per-reporter).
#include <gtest/gtest.h>

#include <memory>

#include "core/async_byz.hpp"
#include "core/bounds.hpp"
#include "core/epsilon_driver.hpp"
#include "net/sim.hpp"
#include "rb/bracha.hpp"
#include "sched/fifo_scheduler.hpp"
#include "sched/random_scheduler.hpp"
#include "witness/aad04.hpp"

namespace apxa {
namespace {

using namespace core;

TEST(Duplication, DeliveriesExceedSendsAtHighProbability) {
  const SystemParams p{5, 1};
  net::SimNetwork net(p, std::make_unique<sched::RandomScheduler>(1));
  net.enable_duplication(1.0, 7);  // every message duplicated
  for (ProcessId i = 0; i < 5; ++i) {
    net.add_process(std::make_unique<RoundAaProcess>(
        crash_aa_config(p, static_cast<double>(i), 2)));
  }
  net.start();
  net.run();  // drain fully so every duplicate lands
  EXPECT_TRUE(net.all_correct_output());
  EXPECT_EQ(net.metrics().messages_delivered, 2 * net.metrics().messages_sent);
}

TEST(Duplication, CrashProtocolSafetyUnchanged) {
  for (const double prob : {0.3, 1.0}) {
    const SystemParams p{7, 2};
    net::SimNetwork net(p, std::make_unique<sched::RandomScheduler>(3));
    net.enable_duplication(prob, 11);
    const Round rounds = rounds_for_bound(1.0, 1e-3, Averager::kMean, p);
    for (ProcessId i = 0; i < 7; ++i) {
      net.add_process(std::make_unique<RoundAaProcess>(
          crash_aa_config(p, static_cast<double>(i) / 6.0, rounds)));
    }
    net.crash_after_sends(0, 10);
    net.start();
    net.run_until([&net] { return net.all_correct_output(); });
    ASSERT_TRUE(net.all_correct_output());
    const auto outs = net.correct_outputs();
    std::vector<double> sorted = outs;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_LE(sorted.back() - sorted.front(), 1e-3 + 1e-12);
    EXPECT_GE(sorted.front(), 0.0);
    EXPECT_LE(sorted.back(), 1.0);
  }
}

TEST(Duplication, OutputsIdenticalToDedupedRun) {
  // Duplication must not change the *result*, only the traffic: the round
  // collector freezes on the first quorum regardless of replays.  (Delays
  // differ between the runs, so we assert invariants, not bit-equality.)
  const SystemParams p{5, 1};
  auto run_with_dup = [&](bool dup) {
    net::SimNetwork net(p, std::make_unique<sched::FifoScheduler>());
    if (dup) net.enable_duplication(1.0, 5);
    for (ProcessId i = 0; i < 5; ++i) {
      net.add_process(std::make_unique<RoundAaProcess>(
          crash_aa_config(p, static_cast<double>(i), 3)));
    }
    net.start();
    net.run_until([&net] { return net.all_correct_output(); });
    return net.correct_outputs();
  };
  // Under the constant-delay FIFO schedule the duplicate arrives together
  // with the original and is dropped by the dedupe logic: identical outputs.
  EXPECT_EQ(run_with_dup(false), run_with_dup(true));
}

TEST(Duplication, BrachaDeliversExactlyOnce) {
  const SystemParams p{4, 1};

  /// Minimal RB harness counting deliveries.
  class Party final : public net::Process {
   public:
    explicit Party(SystemParams params, bool is_origin)
        : is_origin_(is_origin),
          hub_(params, [this](net::Context&, std::uint32_t, ProcessId, double) {
            ++deliveries_;
          }) {}
    void on_start(net::Context& ctx) override {
      if (is_origin_) hub_.broadcast(ctx, 0, 3.25);
    }
    void on_message(net::Context& ctx, ProcessId from, BytesView payload) override {
      hub_.handle(ctx, from, payload);
    }
    bool is_origin_;
    int deliveries_ = 0;
    rb::BrachaHub hub_;
  };

  net::SimNetwork net(p, std::make_unique<sched::RandomScheduler>(9));
  net.enable_duplication(1.0, 13);
  std::vector<Party*> parties;
  for (ProcessId i = 0; i < 4; ++i) {
    auto party = std::make_unique<Party>(p, i == 0);
    parties.push_back(party.get());
    net.add_process(std::move(party));
  }
  net.start();
  net.run();
  for (const auto* q : parties) EXPECT_EQ(q->deliveries_, 1);
}

TEST(Duplication, WitnessProtocolUnaffected) {
  RunConfig cfg;  // driver has no duplication knob; use the network directly
  const SystemParams p{7, 2};
  net::SimNetwork net(p, std::make_unique<sched::RandomScheduler>(21));
  net.enable_duplication(0.5, 17);
  for (ProcessId i = 0; i < 7; ++i) {
    witness::WitnessConfig wc;
    wc.params = p;
    wc.input = static_cast<double>(i) / 6.0;
    wc.iterations = 8;
    net.add_process(std::make_unique<witness::WitnessAaProcess>(wc));
  }
  net.start();
  net.run_until([&net] { return net.all_correct_output(); });
  ASSERT_TRUE(net.all_correct_output());
  const auto outs = net.correct_outputs();
  std::vector<double> sorted = outs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_LE(sorted.back() - sorted.front(), 1.0 / 256.0 + 1e-12);
  (void)cfg;
}

TEST(Duplication, ValidatesProbability) {
  net::SimNetwork net({3, 1}, std::make_unique<sched::RandomScheduler>(1));
  EXPECT_THROW(net.enable_duplication(1.5, 1), std::invalid_argument);
  EXPECT_THROW(net.enable_duplication(-0.1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace apxa
