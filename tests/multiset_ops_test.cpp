// Unit and property tests for the averaging toolkit — including the
// view-intersection lemma behind the crash-model convergence factor.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.hpp"
#include "core/multiset_ops.hpp"

namespace apxa::core {
namespace {

TEST(MultisetOps, ReduceDropsExtremes) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(reduce(v, 2), (std::vector<double>{3, 4, 5}));
  EXPECT_EQ(reduce(v, 0), v);
}

TEST(MultisetOps, ReduceRequiresEnoughElements) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_THROW(reduce(v, 2), std::invalid_argument);
  EXPECT_NO_THROW(reduce(v, 1));
}

TEST(MultisetOps, SelectEveryKth) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(select(v, 2), (std::vector<double>{1, 3, 5, 7}));
  EXPECT_EQ(select(v, 3), (std::vector<double>{1, 4, 7}));
  EXPECT_EQ(select(v, 1), v);
  EXPECT_EQ(select(v, 100), (std::vector<double>{1}));
}

TEST(MultisetOps, SelectRejectsZeroK) {
  std::vector<double> v{1};
  EXPECT_THROW(select(v, 0), std::invalid_argument);
}

TEST(MultisetOps, MeanMidpointMedianSpread) {
  std::vector<double> v{1, 2, 3, 10};
  EXPECT_EQ(mean(v), 4.0);
  EXPECT_EQ(midpoint(v), 5.5);
  EXPECT_EQ(median(v), 2.5);
  EXPECT_EQ(spread(v), 9.0);
  std::vector<double> odd{1, 5, 9};
  EXPECT_EQ(median(odd), 5.0);
}

TEST(MultisetOps, SpreadDegenerate) {
  EXPECT_EQ(spread(std::vector<double>{}), 0.0);
  EXPECT_EQ(spread(std::vector<double>{3.0}), 0.0);
}

TEST(MultisetOps, HullContains) {
  const Interval h = hull_of(std::vector<double>{2.0, -1.0, 5.0});
  EXPECT_TRUE(h.contains(-1.0));
  EXPECT_TRUE(h.contains(5.0));
  EXPECT_TRUE(h.contains(0.0));
  EXPECT_FALSE(h.contains(5.1));
  EXPECT_FALSE(h.contains(-1.1));
  EXPECT_EQ(h.width(), 6.0);
}

TEST(MultisetOps, ApplyAveragerUnsortedInput) {
  // apply_averager sorts internally.
  EXPECT_EQ(apply_averager(Averager::kMidpoint, {9, 1, 5}, 1), 5.0);
  EXPECT_EQ(apply_averager(Averager::kMean, {9, 1, 5}, 1), 5.0);
}

TEST(MultisetOps, ReduceMidpointLaundersExtremes) {
  // One fake extreme per side gets removed with t = 1.
  const double y = apply_averager(Averager::kReduceMidpoint,
                                  {-1e9, 4, 5, 6, 1e9}, 1);
  EXPECT_EQ(y, 5.0);
}

TEST(MultisetOps, DlpswSyncComposition) {
  // n=7, t=1 view: reduce_1 keeps middle 5, select_1 keeps all, mean.
  const double y =
      apply_averager(Averager::kDlpswSync, {1, 2, 3, 4, 5, 6, 7}, 1);
  EXPECT_EQ(y, 4.0);
}

TEST(MultisetOps, DlpswAsyncComposition) {
  // t=1: reduce_1 keeps {2..10}, select_2 keeps {2,4,6,8,10}, mean = 6.
  const double y = apply_averager(Averager::kDlpswAsync,
                                  {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 1);
  EXPECT_EQ(y, 6.0);
}

TEST(MultisetOps, ByzantineSafetyFlags) {
  EXPECT_FALSE(averager_is_byzantine_safe(Averager::kMean));
  EXPECT_FALSE(averager_is_byzantine_safe(Averager::kMidpoint));
  EXPECT_FALSE(averager_is_byzantine_safe(Averager::kMedian));
  EXPECT_TRUE(averager_is_byzantine_safe(Averager::kReduceMidpoint));
  EXPECT_TRUE(averager_is_byzantine_safe(Averager::kDlpswSync));
  EXPECT_TRUE(averager_is_byzantine_safe(Averager::kDlpswAsync));
}

TEST(MultisetOps, NamesAreStable) {
  EXPECT_EQ(averager_name(Averager::kMean), "mean");
  EXPECT_EQ(averager_name(Averager::kDlpswAsync), "dlpsw-async");
}

// ---------------------------------------------------------------------------
// Property: every averager output lies within the hull of its (genuine)
// input multiset — with reduce-based rules even when up to t extremes are
// fabricated.
// ---------------------------------------------------------------------------

class AveragerHullProperty
    : public ::testing::TestWithParam<std::tuple<Averager, int>> {};

TEST_P(AveragerHullProperty, OutputInHull) {
  const auto [avg, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const std::uint32_t t = 2;
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t m = 4 * t + 1 + rng.next_below(8);
    std::vector<double> vals(m);
    for (auto& v : vals) v = rng.next_double(-100.0, 100.0);
    const Interval h = hull_of(vals);
    const double y = apply_averager(avg, vals, t);
    EXPECT_TRUE(h.contains(y)) << averager_name(avg) << " value " << y;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAveragers, AveragerHullProperty,
    ::testing::Combine(::testing::Values(Averager::kMean, Averager::kMidpoint,
                                         Averager::kMedian,
                                         Averager::kReduceMidpoint,
                                         Averager::kDlpswSync,
                                         Averager::kDlpswAsync),
                       ::testing::Values(1, 2, 3)));

// Byzantine laundering: with at most t fabricated values, reduce-based rules
// stay within the hull of the genuine values.
class LaunderingProperty : public ::testing::TestWithParam<Averager> {};

TEST_P(LaunderingProperty, FabricatedExtremesClipped) {
  const Averager avg = GetParam();
  Rng rng(99);
  const std::uint32_t t = 2;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> genuine(4 * t + 1 + rng.next_below(6));
    for (auto& v : genuine) v = rng.next_double(-10.0, 10.0);
    const Interval h = hull_of(genuine);

    std::vector<double> poisoned = genuine;
    for (std::uint32_t i = 0; i < t; ++i) {
      poisoned.push_back(rng.next_bool(0.5) ? 1e12 : -1e12);
    }
    const double y = apply_averager(avg, poisoned, t);
    EXPECT_TRUE(h.contains(y)) << averager_name(avg) << " leaked " << y;
  }
}

INSTANTIATE_TEST_SUITE_P(ByzSafeAveragers, LaunderingProperty,
                         ::testing::Values(Averager::kReduceMidpoint,
                                           Averager::kDlpswSync,
                                           Averager::kDlpswAsync));

// The view-intersection lemma: two multisets of size m sharing >= m - d
// elements have means within d/m of the spread.  This is the engine of the
// (n - t)/t crash-model convergence factor.
TEST(MultisetOps, MeanLipschitzInSymmetricDifference) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t m = 5 + rng.next_below(10);
    const std::size_t d = 1 + rng.next_below(std::min<std::size_t>(m - 1, 4));

    std::vector<double> common(m - d), extra_a(d), extra_b(d);
    for (auto& v : common) v = rng.next_double();
    for (auto& v : extra_a) v = rng.next_double();
    for (auto& v : extra_b) v = rng.next_double();

    std::vector<double> a = common, b = common;
    a.insert(a.end(), extra_a.begin(), extra_a.end());
    b.insert(b.end(), extra_b.begin(), extra_b.end());

    std::vector<double> all = a;
    all.insert(all.end(), extra_b.begin(), extra_b.end());
    std::sort(all.begin(), all.end());
    const double s = spread(all);

    const double gap = std::abs(mean(a) - mean(b));
    EXPECT_LE(gap, static_cast<double>(d) / static_cast<double>(m) * s + 1e-12);
  }
}

}  // namespace
}  // namespace apxa::core
