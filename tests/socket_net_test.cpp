// netio: the perfect-link state machine, the deterministic fault shim, the
// UDP wrapper and the socket transport end to end.
//
// PeerLink tests drive the retransmit/dedup machinery with an explicit
// clock — no sockets, no sleeps — which is the payoff of keeping the link a
// pure state machine.  The SocketNetwork tests run real loopback datagrams
// (clean and under injected loss) and pin the PR 9 accounting contract:
// logical message counts are loss-invariant, retransmissions are physical
// overhead counted separately, and a failed verdict on this backend dumps
// per-party link state into the flight record.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/async_byz.hpp"
#include "core/async_crash.hpp"
#include "harness/build.hpp"
#include "harness/harness.hpp"
#include "net/metrics.hpp"
#include "netio/fault.hpp"
#include "netio/link.hpp"
#include "netio/socket_net.hpp"
#include "netio/udp.hpp"
#include "obs/trace.hpp"

namespace apxa {
namespace {

using namespace std::chrono_literals;
using netio::Delivered;
using netio::FaultConfig;
using netio::FaultShim;
using netio::LinkConfig;
using netio::PeerLink;

PeerLink::TimePoint t0() { return PeerLink::TimePoint{} + 1h; }

Bytes payload_of(std::initializer_list<int> xs) {
  Bytes b;
  for (int x : xs) b.push_back(static_cast<std::byte>(x));
  return b;
}

// --- PeerLink: delivery, dedup, acks ----------------------------------------

TEST(PeerLink, RoundTripDeliversOnce) {
  PeerLink sender, receiver;
  const Bytes msg = payload_of({1, 2, 3});
  const Bytes dgram = sender.make_data(msg, t0());
  EXPECT_EQ(static_cast<std::uint8_t>(dgram[0]), netio::kDataTag);
  EXPECT_EQ(sender.unacked(), 1u);

  std::vector<Delivered> out;
  receiver.on_datagram(dgram, t0() + 1ms, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, msg);
  EXPECT_TRUE(receiver.acks_pending());
  EXPECT_EQ(receiver.last_seq_seen(), 1u);

  // The same datagram again (a retransmission whose ack was lost): no second
  // delivery, but the ack is re-queued so the sender can still clear it.
  out.clear();
  receiver.on_datagram(dgram, t0() + 2ms, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(receiver.stats().duplicates_dropped, 1u);
  EXPECT_TRUE(receiver.acks_pending());
}

TEST(PeerLink, PureAckClearsResendQueue) {
  PeerLink sender, receiver;
  std::vector<Delivered> out;
  receiver.on_datagram(sender.make_data(payload_of({7}), t0()), t0(), out);
  const auto ack = receiver.take_ack_frame();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(static_cast<std::uint8_t>((*ack)[0]), netio::kAckTag);
  EXPECT_FALSE(receiver.acks_pending());

  out.clear();
  sender.on_datagram(*ack, t0() + 1ms, out);
  EXPECT_TRUE(out.empty());  // pure acks carry no payload
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_EQ(sender.next_deadline(), PeerLink::TimePoint::max());
  EXPECT_EQ(sender.stats().acks_received, 1u);
}

TEST(PeerLink, AcksPiggybackOnReverseData) {
  PeerLink a, b;  // full-duplex pair: a -> b data, b -> a data carrying acks
  std::vector<Delivered> out;
  b.on_datagram(a.make_data(payload_of({1}), t0()), t0(), out);
  ASSERT_EQ(out.size(), 1u);
  out.clear();

  // b's next DATA frame consumes the pending ack as piggyback; receiving it
  // both delivers b's payload and clears a's resend queue — no pure ACK
  // datagram needed on a bidirectional link.
  const Bytes reverse = b.make_data(payload_of({2}), t0() + 1ms);
  EXPECT_FALSE(b.acks_pending());
  a.on_datagram(reverse, t0() + 2ms, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, payload_of({2}));
  EXPECT_EQ(a.unacked(), 0u);
}

TEST(PeerLink, OutOfOrderDeliversBothAndDedupsAcross) {
  PeerLink sender, receiver;
  const Bytes d1 = sender.make_data(payload_of({1}), t0());
  const Bytes d2 = sender.make_data(payload_of({2}), t0());
  std::vector<Delivered> out;
  receiver.on_datagram(d2, t0(), out);  // seq 2 first
  receiver.on_datagram(d1, t0(), out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, payload_of({2}));
  EXPECT_EQ(out[1].payload, payload_of({1}));
  // Both seqs are now at/below the contiguous frontier: replays of either
  // are duplicates.
  out.clear();
  receiver.on_datagram(d2, t0(), out);
  receiver.on_datagram(d1, t0(), out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(receiver.stats().duplicates_dropped, 2u);
}

// --- PeerLink: retransmission and backoff -----------------------------------

TEST(PeerLink, RetransmitsAfterRtoWithBackoff) {
  LinkConfig cfg;
  cfg.rto_initial = 2'000us;
  cfg.rto_max = 8'000us;
  PeerLink sender(cfg);
  (void)sender.make_data(payload_of({9}), t0());

  std::vector<Bytes> resends;
  sender.collect_retransmits(t0() + 1ms, resends);
  EXPECT_TRUE(resends.empty()) << "fired before the RTO";

  sender.collect_retransmits(t0() + 3ms, resends);
  ASSERT_EQ(resends.size(), 1u);
  EXPECT_EQ(sender.stats().retransmits, 1u);

  // Backoff doubled to 4 ms: quiet until then, firing after.
  resends.clear();
  sender.collect_retransmits(t0() + 5ms, resends);
  EXPECT_TRUE(resends.empty());
  sender.collect_retransmits(t0() + 8ms, resends);
  ASSERT_EQ(resends.size(), 1u);

  // A retransmission is a full DATA frame: the receiver treats a first-ever
  // arrival of it as the original.
  PeerLink receiver;
  std::vector<Delivered> out;
  receiver.on_datagram(resends[0], t0() + 9ms, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, payload_of({9}));
}

TEST(PeerLink, CapacityBoundsResendQueue) {
  LinkConfig cfg;
  cfg.max_unacked = 4;
  PeerLink sender(cfg);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sender.has_capacity());
    (void)sender.make_data(payload_of({i}), t0());
  }
  EXPECT_FALSE(sender.has_capacity());
  EXPECT_EQ(sender.stats().unacked_peak, 4u);
}

// --- PeerLink: total decoders ------------------------------------------------

TEST(PeerLink, GarbageDatagramsAreCountedNeverThrown) {
  PeerLink link;
  std::vector<Delivered> out;
  const Bytes truncated_data = {static_cast<std::byte>(netio::kDataTag)};
  const Bytes truncated_ack = {static_cast<std::byte>(netio::kAckTag),
                               static_cast<std::byte>(0xFF)};
  const Bytes wrong_tag = payload_of({0x01, 0x02, 0x03});
  const Bytes empty;
  for (const Bytes& bad : {empty, truncated_data, truncated_ack, wrong_tag}) {
    EXPECT_NO_THROW(link.on_datagram(bad, t0(), out));
  }
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(link.stats().malformed, 4u);
  EXPECT_EQ(link.stats().delivered, 0u);
}

TEST(PeerLink, ForgedAckCountIsClamped) {
  // An ACK frame claiming more entries than the datagram holds must not
  // over-read; the whole frame is rejected as malformed — acks apply only
  // after the frame validates end to end.
  PeerLink sender;
  (void)sender.make_data(payload_of({1}), t0());
  Bytes forged = {static_cast<std::byte>(netio::kAckTag),
                  static_cast<std::byte>(200)};  // claims 200 acks, has none
  std::vector<Delivered> out;
  EXPECT_NO_THROW(sender.on_datagram(forged, t0(), out));
  EXPECT_EQ(sender.unacked(), 1u);  // nothing legitimately acked
  EXPECT_EQ(sender.stats().malformed, 1u);
}

TEST(PeerLink, TruncatedAckListLeavesQueueIntact) {
  // Fuzz-surfaced gap (PR 10): DATA frames used to apply piggybacked acks as
  // they parsed, so a frame whose ack list claimed 3 entries but truncated
  // after 1 would still retire that first sequence number from the resend
  // queue before the frame was rejected.  Parsing is now two-phase: acks are
  // collected first and applied only once the whole frame validates, so a
  // truncated forgery must leave the queue exactly as it was.
  PeerLink sender;
  (void)sender.make_data(payload_of({1}), t0());  // seq 1 in flight
  (void)sender.make_data(payload_of({2}), t0());  // seq 2 in flight
  ASSERT_EQ(sender.unacked(), 2u);

  // [kDataTag][seq=1][ts=0][n_acks=3][ack=1]  — list ends 2 entries short.
  const Bytes forged = {static_cast<std::byte>(netio::kDataTag),
                        static_cast<std::byte>(1), static_cast<std::byte>(0),
                        static_cast<std::byte>(3), static_cast<std::byte>(1)};
  std::vector<Delivered> out;
  EXPECT_NO_THROW(sender.on_datagram(forged, t0(), out));
  EXPECT_TRUE(out.empty()) << "a malformed frame must deliver nothing";
  EXPECT_EQ(sender.unacked(), 2u) << "partial ack list leaked into the queue";
  EXPECT_EQ(sender.stats().malformed, 1u);
}

TEST(PeerLink, PureAckWithTrailingBytesIsRejected) {
  // A standalone ACK frame must account for every byte: trailing garbage
  // after the declared ack list means the frame is forged or corrupted, and
  // none of its acks may be applied.
  PeerLink sender;
  (void)sender.make_data(payload_of({1}), t0());  // seq 1 in flight
  const Bytes forged = {static_cast<std::byte>(netio::kAckTag),
                        static_cast<std::byte>(1), static_cast<std::byte>(1),
                        static_cast<std::byte>(0x7f)};  // valid ack + garbage
  std::vector<Delivered> out;
  EXPECT_NO_THROW(sender.on_datagram(forged, t0(), out));
  EXPECT_EQ(sender.unacked(), 1u) << "acks from an oversized frame applied";
  EXPECT_EQ(sender.stats().malformed, 1u);
}

// --- FaultShim ---------------------------------------------------------------

TEST(FaultShim, DisabledAlwaysPasses) {
  FaultShim shim(FaultConfig{}, /*party=*/0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(shim.decide(), FaultShim::Fate::kPass);
  }
  EXPECT_EQ(shim.dropped(), 0u);
  EXPECT_EQ(shim.delayed(), 0u);
}

TEST(FaultShim, DecisionSequenceIsDeterministicPerSeedAndParty) {
  FaultConfig cfg;
  cfg.loss = 0.3;
  cfg.reorder = 0.2;
  cfg.seed = 42;
  auto sequence = [&cfg](std::uint32_t party) {
    FaultShim shim(cfg, party);
    std::vector<FaultShim::Fate> fates;
    for (int i = 0; i < 256; ++i) fates.push_back(shim.decide());
    return fates;
  };
  EXPECT_EQ(sequence(0), sequence(0));  // reproducible
  EXPECT_NE(sequence(0), sequence(1));  // parties draw independent streams
  const auto fates = sequence(3);
  const auto dropped = static_cast<std::size_t>(
      std::count(fates.begin(), fates.end(), FaultShim::Fate::kDrop));
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(dropped, fates.size());
}

TEST(FaultShim, RejectsOutOfRangeProbabilities) {
  FaultConfig cfg;
  cfg.loss = 1.0;  // would drop every attempt forever: no eventual delivery
  EXPECT_THROW(FaultShim(cfg, 0), std::invalid_argument);
  cfg.loss = 0.0;
  cfg.reorder = -0.1;
  EXPECT_THROW(FaultShim(cfg, 0), std::invalid_argument);
}

// --- UdpSocket ---------------------------------------------------------------

TEST(UdpSocket, LoopbackDatagramRoundTrip) {
  netio::UdpSocket a, b;
  a.bind(0);
  b.bind(0);
  ASSERT_TRUE(a.is_open());
  ASSERT_NE(a.port(), 0u) << "ephemeral bind must resolve the port";
  ASSERT_NE(a.port(), b.port());

  const Bytes msg = payload_of({0xA, 0xB, 0xC});
  ASSERT_TRUE(a.send_to({b.port()}, msg));
  ASSERT_TRUE(b.wait_readable(1'000'000));
  netio::UdpAddress from;
  const auto got = b.recv_from(from);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, msg);
  EXPECT_EQ(from.port, a.port());
  EXPECT_FALSE(b.recv_from(from).has_value()) << "queue must be empty now";
}

// --- SocketNetwork end to end ------------------------------------------------

constexpr SystemParams kP{5, 1};
constexpr Round kRounds = 6;

void add_crash_aa_parties(rt::SocketNetwork& net) {
  for (ProcessId i = 0; i < kP.n; ++i) {
    net.add_process(std::make_unique<core::RoundAaProcess>(
        core::crash_aa_config(kP, static_cast<double>(i), kRounds)));
  }
}

TEST(SocketNet, CleanRunConvergesWithExactLogicalCounts) {
  rt::SocketNetwork net(kP);
  add_crash_aa_parties(net);
  ASSERT_TRUE(net.run(30'000ms));
  EXPECT_TRUE(net.all_correct_output());
  const auto outs = net.correct_outputs();
  ASSERT_EQ(outs.size(), kP.n);
  for (double v : outs) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 4.0);
  }
  // Logical accounting identical to the other transports: fixed-round runs
  // send exactly n * (n - 1) frames per round.
  EXPECT_EQ(net.metrics().messages_sent,
            static_cast<std::uint64_t>(kP.n) * (kP.n - 1) * kRounds);
}

TEST(SocketNet, InjectedLossForcesRetransmissionButNotLogicalInflation) {
  rt::SocketNetwork net(kP);
  FaultConfig faults;
  faults.loss = 0.15;
  faults.reorder = 0.05;
  faults.seed = 11;
  net.set_fault_config(faults);
  add_crash_aa_parties(net);
  ASSERT_TRUE(net.run(60'000ms)) << "perfect link must absorb 15% loss";
  EXPECT_TRUE(net.all_correct_output());

  // The whole point of the shim: the retransmission path actually ran.
  EXPECT_GT(net.link_totals().retransmits, 0u);
  EXPECT_GT(net.metrics().packets_retransmitted, 0u);
  EXPECT_GT(net.metrics().retransmit_rate(), 0.0);

  // Satellite invariant — retransmits are PHYSICAL: logical message counts
  // and packing efficiency must match the loss-free run exactly.
  EXPECT_EQ(net.metrics().messages_sent,
            static_cast<std::uint64_t>(kP.n) * (kP.n - 1) * kRounds);
  EXPECT_DOUBLE_EQ(net.metrics().msgs_per_packet(), 1.0);
}

TEST(SocketNet, BatchingKeepsLogicalCountsAndPacksPackets) {
  auto run_with_batching = [](std::uint32_t batch) {
    rt::SocketNetwork net(kP);
    if (batch > 0) net.enable_batching(batch);
    add_crash_aa_parties(net);
    EXPECT_TRUE(net.run(30'000ms));
    return net.metrics();
  };
  const net::Metrics unbatched = run_with_batching(0);
  const net::Metrics batched = run_with_batching(8);
  EXPECT_EQ(batched.messages_sent, unbatched.messages_sent);
  EXPECT_LE(batched.packets_sent, unbatched.packets_sent);
  EXPECT_GE(batched.msgs_per_packet(), unbatched.msgs_per_packet());
}

TEST(SocketNet, CrashAfterSendsCountsLogicalSends) {
  rt::SocketNetwork net(kP);
  net.crash_after_sends(4, 4);  // one full round-0 multicast, then crash
  add_crash_aa_parties(net);
  ASSERT_TRUE(net.run(30'000ms));
  EXPECT_FALSE(net.is_correct(4));
  EXPECT_EQ(net.metrics().sent_by[4], 4u);
  const auto outs = net.correct_outputs();
  EXPECT_EQ(outs.size(), kP.n - 1);
}

TEST(SocketNet, LinkStateSnapshotCoversEveryLocalParty) {
  rt::SocketNetwork net(kP);
  FaultConfig faults;
  faults.loss = 0.10;
  faults.seed = 5;
  net.set_fault_config(faults);
  add_crash_aa_parties(net);
  ASSERT_TRUE(net.run(60'000ms));
  const auto lines = net.link_state_jsonl();
  ASSERT_EQ(lines.size(), kP.n);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"party\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"retransmits\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"last_seq_seen\":"), std::string::npos) << line;
  }
}

TEST(SocketNet, TraceRecordsRetransmitEvents) {
  obs::TraceSink trace;
  rt::SocketNetwork net(kP);
  FaultConfig faults;
  faults.loss = 0.15;
  faults.seed = 3;
  net.set_fault_config(faults);
  net.set_trace(&trace);
  add_crash_aa_parties(net);
  ASSERT_TRUE(net.run(60'000ms));
  std::size_t retransmit_events = 0;
  for (const auto& ev : trace.snapshot()) {
    if (ev.kind == obs::EventKind::kRetransmit) ++retransmit_events;
    // Executor-domain: retransmits must never contaminate protocol digests.
    EXPECT_FALSE(ev.kind == obs::EventKind::kRetransmit &&
                 obs::is_protocol_event(ev.kind));
  }
  EXPECT_GT(retransmit_events, 0u);
}

// --- metrics accounting (unit level) -----------------------------------------

TEST(SocketMetrics, RetransmitsNeverTouchLogicalCounters) {
  net::Metrics m;
  m.reset(2);
  const Bytes frame = payload_of({1, 0, 10});  // [tag][round][value...]
  m.note_send(0, frame);
  const std::uint64_t msgs = m.messages_sent;
  const std::uint64_t packets = m.packets_sent;
  const double mpp = m.msgs_per_packet();

  for (int i = 0; i < 5; ++i) m.note_retransmit(frame.size() + 8);
  EXPECT_EQ(m.messages_sent, msgs);
  EXPECT_EQ(m.packets_sent, packets);
  EXPECT_DOUBLE_EQ(m.msgs_per_packet(), mpp);
  EXPECT_EQ(m.packets_retransmitted, 5u);
  EXPECT_EQ(m.retransmit_bytes, 5 * (frame.size() + 8));
  EXPECT_DOUBLE_EQ(m.retransmit_rate(), 5.0);
  EXPECT_EQ(m.sent_by[0], msgs);
}

// --- flight recorder integration (harness-level) -----------------------------

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(SocketFlightRecorder, FailedVerdictDumpsLinkState) {
  using namespace apxa::harness;
  // Impossible epsilon after one round: the eps-agreement verdict fails by
  // construction, and on the socket backend the dump must carry per-party
  // link-layer state next to the event ring.
  RunConfig cfg;
  cfg.params = kP;
  cfg.protocol = ProtocolKind::kCrashRound;
  cfg.backend = BackendKind::kSocket;
  cfg.fixed_rounds = 1;
  cfg.epsilon = 1e-9;
  cfg.inputs = linear_inputs(kP.n, 0.0, 1.0);
  cfg.socket_faults.loss = 0.10;
  cfg.socket_faults.seed = 7;
  cfg.thread_timeout = 60s;

  obs::TraceSink trace;
  cfg.trace = &trace;
  cfg.flight_dump = temp_path("socket_fr_verdict.jsonl");
  std::remove(cfg.flight_dump.c_str());

  const RunReport rep = run(cfg);
  ASSERT_FALSE(rep.agreement_ok);

  std::ifstream in(cfg.flight_dump);
  ASSERT_TRUE(in.good()) << "failed verdict must leave a flight dump";
  std::size_t link_state_lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.find("\"link_state\":") != std::string::npos) ++link_state_lines;
  }
  EXPECT_EQ(link_state_lines, kP.n)
      << "one link-state line per local party expected in " << cfg.flight_dump;
  std::remove(cfg.flight_dump.c_str());
}

}  // namespace
}  // namespace apxa
