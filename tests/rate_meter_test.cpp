// Rate extraction from spread traces.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/rate_meter.hpp"

namespace apxa::analysis {
namespace {

TEST(RateMeter, GeometricTrace) {
  // Spread halves every round: sustained factor 2.
  const std::vector<double> trace{8.0, 4.0, 2.0, 1.0};
  const auto s = summarize_rates(trace);
  ASSERT_TRUE(s.measurable);
  EXPECT_NEAR(s.sustained, 2.0, 1e-12);
  EXPECT_NEAR(s.per_round_min, 2.0, 1e-12);
  EXPECT_NEAR(s.per_round_max, 2.0, 1e-12);
  EXPECT_EQ(s.rounds, 3u);
}

TEST(RateMeter, MixedFactors) {
  const std::vector<double> trace{100.0, 10.0, 5.0};
  const auto s = summarize_rates(trace);
  EXPECT_NEAR(s.per_round_max, 10.0, 1e-12);
  EXPECT_NEAR(s.per_round_min, 2.0, 1e-12);
  EXPECT_NEAR(s.sustained, std::sqrt(20.0), 1e-12);
}

TEST(RateMeter, CollapsedTailExcluded) {
  const std::vector<double> trace{4.0, 2.0, 0.0, 0.0};
  const auto s = summarize_rates(trace);
  ASSERT_TRUE(s.measurable);
  EXPECT_EQ(s.rounds, 1u);
  EXPECT_NEAR(s.sustained, 2.0, 1e-12);
}

TEST(RateMeter, UnmeasurableTraces) {
  EXPECT_FALSE(summarize_rates({}).measurable);
  EXPECT_FALSE(summarize_rates({5.0}).measurable);
  EXPECT_FALSE(summarize_rates({0.0, 0.0}).measurable);
}

TEST(RateMeter, WorstOfMerges) {
  const auto a = summarize_rates({8.0, 4.0, 2.0});   // sustained 2
  const auto b = summarize_rates({27.0, 9.0, 3.0});  // sustained 3
  const auto w = worst_of({a, b});
  ASSERT_TRUE(w.measurable);
  EXPECT_NEAR(w.sustained, 2.0, 1e-12);
  EXPECT_NEAR(w.per_round_max, 3.0, 1e-12);
}

TEST(RateMeter, WorstOfSkipsUnmeasurable) {
  const auto a = summarize_rates({});
  const auto b = summarize_rates({4.0, 1.0});
  const auto w = worst_of({a, b});
  ASSERT_TRUE(w.measurable);
  EXPECT_NEAR(w.sustained, 4.0, 1e-12);
  EXPECT_FALSE(worst_of({a, a}).measurable);
}

}  // namespace
}  // namespace apxa::analysis
