// Unit tests for the common layer: rng, bytes, stats, ensure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/bytes.hpp"
#include "common/ensure.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace apxa {
namespace {

TEST(Ids, QuorumIsNMinusT) {
  SystemParams p{10, 3};
  EXPECT_EQ(p.quorum(), 7u);
}

TEST(Ensure, ThrowsInvalidArgument) {
  EXPECT_THROW(APXA_ENSURE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(APXA_ENSURE(true, "fine"));
}

TEST(Ensure, AssertThrowsLogicError) {
  EXPECT_THROW(APXA_ASSERT(false, "bug"), std::logic_error);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowRejectsZero) {
  Rng r(7);
  EXPECT_THROW(r.next_below(0), std::invalid_argument);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, IntInclusiveRange) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = r.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkIndependent) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Bytes, VarintRoundTrip) {
  for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 20,
                          1ull << 40, ~0ull}) {
    ByteWriter w;
    w.put_varint(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.get_varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Bytes, VarintCompactness) {
  ByteWriter w;
  w.put_varint(5);
  EXPECT_EQ(w.bytes().size(), 1u);
  ByteWriter w2;
  w2.put_varint(300);
  EXPECT_EQ(w2.bytes().size(), 2u);
}

TEST(Bytes, VarintRejectsBitsPast63) {
  // Fuzz-surfaced gap (PR 10): a 10-byte LEB128 whose final byte carries
  // payload bits at or above bit 64 used to wrap modulo 2^64, letting a
  // forged overlong encoding alias a small value.  The honest encoder never
  // emits more than bit 63 in the 10th byte, so the reader now rejects any
  // 10th byte with bits other than 0x01 set.
  Bytes forged;
  forged.push_back(static_cast<std::byte>(0x81));  // low bits of "1 + 2^64"
  for (int i = 0; i < 8; ++i) forged.push_back(static_cast<std::byte>(0x80));
  forged.push_back(static_cast<std::byte>(0x02));  // bit 64: out of range
  ByteReader r(forged);
  EXPECT_THROW(r.get_varint(), std::invalid_argument);

  // The boundary value UINT64_MAX (10th byte 0x01, bit 63 only) stays legal.
  ByteWriter w;
  w.put_varint(~0ull);
  EXPECT_EQ(w.bytes().size(), 10u);
  ByteReader ok(w.bytes());
  EXPECT_EQ(ok.get_varint(), ~0ull);
  EXPECT_TRUE(ok.done());
}

TEST(Bytes, F64RoundTrip) {
  for (double v : {0.0, -1.5, 3.141592653589793, 1e-300, -1e300,
                   std::numeric_limits<double>::infinity()}) {
    ByteWriter w;
    w.put_f64(v);
    EXPECT_EQ(w.bytes().size(), 8u);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.get_f64(), v);
  }
}

TEST(Bytes, BitsRoundTrip) {
  std::vector<bool> bits{true, false, false, true, true, true, false, true, true};
  ByteWriter w;
  w.put_bits(bits);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_bits(), bits);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, EmptyBits) {
  ByteWriter w;
  w.put_bits({});
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.get_bits().empty());
}

TEST(Bytes, ReaderOverrunThrows) {
  ByteWriter w;
  w.put_u8(1);
  ByteReader r(w.bytes());
  r.get_u8();
  EXPECT_THROW(r.get_u8(), std::invalid_argument);
}

TEST(Bytes, MixedSequence) {
  ByteWriter w;
  w.put_u8(7);
  w.put_varint(1234567);
  w.put_f64(-0.25);
  w.put_varint(3);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_varint(), 1234567u);
  EXPECT_EQ(r.get_f64(), -0.25);
  EXPECT_EQ(r.get_varint(), 3u);
  EXPECT_TRUE(r.done());
}

TEST(Stats, AccumulatorBasics) {
  Accumulator a;
  EXPECT_TRUE(a.empty());
  a.add(3.0);
  a.add(-1.0);
  a.add(2.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), -1.0);
  EXPECT_EQ(a.max(), 3.0);
  EXPECT_NEAR(a.mean(), 4.0 / 3.0, 1e-12);
}

TEST(Stats, PercentileNearestValues) {
  std::vector<double> s{1, 2, 3, 4, 5};
  EXPECT_EQ(percentile(s, 0), 1.0);
  EXPECT_EQ(percentile(s, 100), 5.0);
  EXPECT_EQ(percentile(s, 50), 3.0);
}

TEST(Stats, PercentileEmptyAndSingleton) {
  EXPECT_EQ(percentile({}, 50), 0.0);
  EXPECT_EQ(percentile({7.0}, 99), 7.0);
}

TEST(Stats, SpreadOf) {
  EXPECT_EQ(spread_of({}), 0.0);
  EXPECT_EQ(spread_of({4.0}), 0.0);
  EXPECT_EQ(spread_of({4.0, 1.0, 9.0}), 8.0);
}

}  // namespace
}  // namespace apxa
