// TraceSink and exporter behavior: seq-ordered merge across writer threads,
// bounded rings (wrap drops oldest, never blocks), the protocol/executor
// domain split behind protocol_events()/protocol_digest(), and the two
// export formats.  Harness-level cases check that traced runs actually
// record the event kinds each layer owns — transports (send/deliver/drop/
// crash), the round engines (round-advance), the collect engine
// (view-freeze) and the threaded executor (claim/steal/idle) — and that
// executor telemetry surfaces in the reports.
//
// Runs in the TSan lane (name matched by the CI regex): the per-thread
// rings plus the relaxed global ticket are exactly the code a data race
// would corrupt.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "harness/harness.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace apxa::obs {
namespace {

TEST(TraceSink, RecordsFieldsAndMergesInSeqOrder) {
  TraceSink sink;
  sink.record(EventKind::kSend, 1, 2, 3, 4.5, 6.5);
  sink.record(EventKind::kDeliver, 2, 1, 3, 1.0, 7.0);
  sink.record(EventKind::kRoundAdvance, 1, 0, 4, 0.25, 7.0);

  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.seq < b.seq;
                             }));
  EXPECT_EQ(events[0].kind, EventKind::kSend);
  EXPECT_EQ(events[0].party, 1u);
  EXPECT_EQ(events[0].peer, 2u);
  EXPECT_EQ(events[0].round, 3);
  EXPECT_EQ(events[0].value, 4.5);
  EXPECT_EQ(events[0].vtime, 6.5);
  EXPECT_EQ(events[2].kind, EventKind::kRoundAdvance);
  EXPECT_EQ(sink.recorded(), 3u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, CapacityRoundsUpToPowerOfTwoWithFloor) {
  EXPECT_EQ(TraceSink(1).ring_capacity(), 64u);
  EXPECT_EQ(TraceSink(64).ring_capacity(), 64u);
  EXPECT_EQ(TraceSink(100).ring_capacity(), 128u);
  EXPECT_EQ(TraceSink().ring_capacity(), TraceSink::kDefaultRingCapacity);
}

TEST(TraceSink, RingWrapKeepsNewestEventsAndCountsDrops) {
  TraceSink sink(64);
  for (int i = 0; i < 200; ++i) {
    sink.record(EventKind::kSend, 0, 0, i, 0.0, 0.0);
  }
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 64u);
  EXPECT_EQ(sink.recorded(), 200u);
  EXPECT_EQ(sink.dropped(), 136u);
  // The survivors are exactly the newest 64, still in order.
  EXPECT_EQ(events.front().round, 136);
  EXPECT_EQ(events.back().round, 199);
}

TEST(TraceSink, WriterThreadsGetDistinctSeqTickets) {
  TraceSink sink;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sink.record(EventKind::kClaim, static_cast<std::uint32_t>(t), 0, i,
                    0.0, 0.0);
      }
    });
  }
  for (auto& w : writers) w.join();

  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<std::uint64_t> seqs;
  for (const auto& e : events) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), events.size());  // tickets never collide
  // Per-thread order is preserved in the merged stream.
  std::vector<std::int64_t> last(kThreads, -1);
  for (const auto& e : events) {
    EXPECT_LT(last[e.party], e.round);
    last[e.party] = e.round;
  }
}

TEST(TraceSink, ThreadLocalCacheRoutesAcrossSinks) {
  // The fast path caches (sink id, ring) per thread; interleaving two sinks
  // on one thread must re-resolve instead of writing into the wrong ring.
  TraceSink a;
  TraceSink b;
  a.record(EventKind::kSend, 1, 0, 0, 0.0, 0.0);
  b.record(EventKind::kSend, 2, 0, 0, 0.0, 0.0);
  a.record(EventKind::kSend, 1, 0, 1, 0.0, 0.0);
  EXPECT_EQ(a.snapshot().size(), 2u);
  EXPECT_EQ(b.snapshot().size(), 1u);
  for (const auto& e : a.snapshot()) EXPECT_EQ(e.party, 1u);
  for (const auto& e : b.snapshot()) EXPECT_EQ(e.party, 2u);
}

TEST(TraceDomains, ProtocolFilterExcludesExecutorEvents) {
  TraceSink sink;
  sink.record(EventKind::kSend, 0, 1, 0, 1.0, 0.5);
  sink.record(EventKind::kStepStage, 1, 0, -1, 1.0, 0.5);
  sink.record(EventKind::kDeliver, 0, 1, 0, 1.0, 1.0);
  sink.record(EventKind::kStepCommit, 0, 1, -1, 2.0, 1.0);
  sink.record(EventKind::kClaim, 0, 3, -1, 0.0, 0.0);
  sink.record(EventKind::kInstanceFinish, 3, 0, -1, 2.0, 2.0);

  const auto prot = protocol_events(sink.snapshot());
  ASSERT_EQ(prot.size(), 3u);
  EXPECT_EQ(prot[0].kind, EventKind::kSend);
  EXPECT_EQ(prot[1].kind, EventKind::kDeliver);
  EXPECT_EQ(prot[2].kind, EventKind::kInstanceFinish);
}

TEST(TraceDomains, DigestIgnoresExecutorNoiseButSeesProtocolChanges) {
  auto digest_of = [](bool with_noise, double send_value) {
    TraceSink sink;
    sink.record(EventKind::kSend, 0, 1, 0, send_value, 0.5);
    if (with_noise) {
      sink.record(EventKind::kStepStage, 7, 0, -1, 1.0, 0.5);
      sink.record(EventKind::kIdle, 2, 0, -1, 0.0, 0.0);
    }
    sink.record(EventKind::kDeliver, 0, 1, 0, send_value, 1.0);
    return protocol_digest(sink.snapshot());
  };
  EXPECT_EQ(digest_of(false, 1.0), digest_of(true, 1.0));
  EXPECT_NE(digest_of(false, 1.0), digest_of(false, 2.0));
}

TEST(TraceDomains, KindNamesCoverEveryKind) {
  for (const EventKind k :
       {EventKind::kSend, EventKind::kDeliver, EventKind::kDrop,
        EventKind::kCrash, EventKind::kRoundAdvance, EventKind::kViewFreeze,
        EventKind::kInstanceFinish, EventKind::kClaim, EventKind::kSteal,
        EventKind::kIdle, EventKind::kStepStage, EventKind::kStepCommit}) {
    EXPECT_STRNE(kind_name(k), "");
  }
  EXPECT_TRUE(is_protocol_event(EventKind::kInstanceFinish));
  EXPECT_FALSE(is_protocol_event(EventKind::kClaim));
}

// --- exporters ---------------------------------------------------------------

TEST(TraceExport, JsonlEmitsOneObjectPerEventInSeqOrder) {
  TraceSink sink;
  sink.record(EventKind::kSend, 0, 1, 2, 0.5, 1.0);
  sink.record(EventKind::kDeliver, 0, 1, 2, 0.5, 1.5);
  const std::string jsonl = to_jsonl(sink.snapshot());
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  const auto first_line = jsonl.substr(0, jsonl.find('\n'));
  EXPECT_EQ(first_line.front(), '{');
  EXPECT_EQ(first_line.back(), '}');
  EXPECT_NE(first_line.find("\"kind\":\"send\""), std::string::npos);
  EXPECT_NE(first_line.find("\"round\":2"), std::string::npos);
  EXPECT_LT(jsonl.find("\"kind\":\"send\""), jsonl.find("\"kind\":\"deliver\""));
}

TEST(TraceExport, ChromeJsonCarriesBothProcessTracks) {
  TraceSink sink;
  sink.record(EventKind::kSend, 0, 1, 2, 0.5, 1.0);    // protocol -> pid 0
  sink.record(EventKind::kClaim, 3, 0, -1, 0.0, 0.0);  // executor -> pid 1
  const std::string doc = to_chrome_json(sink.snapshot());
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc[doc.find_last_not_of('\n')], '}');
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("process_name"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"send\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"claim\""), std::string::npos);
  // Braces/brackets balance — cheap structural sanity without a parser
  // (tools/trace_view.py and the CI artifact load do the strict parse).
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));
}

// --- traced runs through the harness -----------------------------------------

TEST(TraceHarness, SimRunRecordsEveryProtocolLayer) {
  using namespace apxa::harness;
  const SystemParams p{5, 1};
  RunConfig cfg;
  cfg.params = p;
  cfg.protocol = ProtocolKind::kCrashRound;
  cfg.fixed_rounds = 4;
  cfg.inputs = linear_inputs(p.n, 0.0, 1.0);
  adversary::CrashSpec crash;  // crash mid-run: kCrash + kDrop must appear
  crash.who = 4;
  crash.after_sends = 10;
  cfg.crashes = {crash};
  cfg.backend = BackendKind::kSim;

  obs::TraceSink trace;
  cfg.trace = &trace;
  const RunReport rep = run(cfg);
  EXPECT_TRUE(rep.validity_ok);

  std::uint64_t sends = 0, delivers = 0, drops = 0, crashes = 0, rounds = 0;
  for (const auto& e : trace.snapshot()) {
    switch (e.kind) {
      case EventKind::kSend: ++sends; break;
      case EventKind::kDeliver: ++delivers; break;
      case EventKind::kDrop: ++drops; break;
      case EventKind::kCrash: ++crashes; break;
      case EventKind::kRoundAdvance: ++rounds; break;
      default: break;
    }
  }
  EXPECT_EQ(sends, rep.metrics.packets_sent);
  EXPECT_EQ(delivers, rep.metrics.messages_delivered);
  EXPECT_EQ(crashes, 1u);
  EXPECT_GT(drops, 0u);   // the crashed party's queued traffic
  EXPECT_GT(rounds, 0u);  // harness kRoundAdvance hook
}

TEST(TraceHarness, ConvexRunRecordsViewFreezes) {
  using namespace apxa::harness;
  const SystemParams p{4, 1};
  VectorRunConfig cfg;
  cfg.params = p;
  cfg.protocol = ProtocolKind::kVectorConvex;
  cfg.dim = 2;
  cfg.fixed_rounds = 3;
  cfg.inputs = corner_split_inputs(p.n, 2, 2, 0.0, 1.0);
  cfg.backend = BackendKind::kSim;

  obs::TraceSink trace;
  cfg.trace = &trace;
  const VectorRunReport rep = run(cfg);
  EXPECT_TRUE(rep.all_output);

  std::uint64_t freezes = 0;
  for (const auto& e : trace.snapshot()) {
    if (e.kind != EventKind::kViewFreeze) continue;
    ++freezes;
    EXPECT_GE(e.value, p.quorum());  // frozen views hold >= n - t entries
  }
  // Every correct party freezes one view per round.
  EXPECT_EQ(freezes, static_cast<std::uint64_t>(p.n) * cfg.fixed_rounds);
}

TEST(TraceHarness, ThreadRunSurfacesExecutorTelemetry) {
  using namespace apxa::harness;
  const SystemParams p{5, 1};
  RunConfig cfg;
  cfg.params = p;
  cfg.protocol = ProtocolKind::kCrashRound;
  cfg.fixed_rounds = 4;
  cfg.inputs = linear_inputs(p.n, 0.0, 1.0);
  cfg.backend = BackendKind::kThread;

  obs::TraceSink trace;
  cfg.trace = &trace;
  const RunReport rep = run(cfg);
  EXPECT_TRUE(rep.all_output);
  EXPECT_GT(rep.exec_stats.workers, 0u);
  EXPECT_GT(rep.exec_stats.claims, 0u);
  EXPECT_GT(rep.exec_stats.parties_run, 0u);

  std::uint64_t claims = 0, protocol = 0;
  for (const auto& e : trace.snapshot()) {
    if (e.kind == EventKind::kClaim) ++claims;
    if (is_protocol_event(e.kind)) ++protocol;
  }
  EXPECT_GT(claims, 0u);
  EXPECT_GT(protocol, 0u);
}

TEST(TraceHarness, SimParallelRunCountsFannedSteps) {
  using namespace apxa::harness;
  const SystemParams p{8, 2};
  RunConfig cfg;
  cfg.params = p;
  cfg.protocol = ProtocolKind::kCrashRound;
  cfg.fixed_rounds = 4;
  cfg.inputs = linear_inputs(p.n, 0.0, 1.0);
  cfg.sched = SchedKind::kFifo;  // constant delays -> wide equal-time steps
  cfg.backend = BackendKind::kSim;
  cfg.sim_workers = 4;
  const RunReport rep = run(cfg);
  EXPECT_TRUE(rep.all_output);
  EXPECT_GT(rep.exec_stats.steps, 0u);
  EXPECT_GT(rep.exec_stats.fanned_steps, 0u);
  EXPECT_GT(rep.exec_stats.fanned_events, 0u);
}

}  // namespace
}  // namespace apxa::obs
