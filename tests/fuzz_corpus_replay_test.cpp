// Corpus-replay regression suite: every committed fuzz input replays clean
// through its target on every build, with any compiler — no fuzzing
// toolchain involved.  A target that crashes or trips a property here takes
// the whole binary down, which is exactly the point: once a fuzzer (or a
// hand-written forgery) lands in fuzz/corpus/, it is pinned forever.
//
// On top of the committed corpus, each byte-level target gets a deterministic
// random smoke (splitmix64 buffers) so a build without ENABLE_FUZZING still
// pushes a few hundred arbitrary byte strings through every decoder.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "targets.hpp"

namespace apxa::fuzz {
namespace {

namespace fs = std::filesystem;

#ifndef APXA_FUZZ_CORPUS_DIR
#error "tests/CMakeLists.txt must define APXA_FUZZ_CORPUS_DIR"
#endif

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class CorpusReplay : public ::testing::TestWithParam<TargetEntry> {};

TEST_P(CorpusReplay, CommittedInputsReplayClean) {
  const TargetEntry& target = GetParam();
  const fs::path dir = fs::path(APXA_FUZZ_CORPUS_DIR) / target.name;
  ASSERT_TRUE(fs::is_directory(dir))
      << "no committed corpus at " << dir
      << " — every fuzz target ships seeds (fuzz/gen_corpus.cpp)";
  std::size_t replayed = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    SCOPED_TRACE(entry.path().string());
    std::ifstream f(entry.path(), std::ios::binary);
    ASSERT_TRUE(f.good());
    std::vector<char> buf((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
    EXPECT_EQ(0, target.fn(reinterpret_cast<const std::uint8_t*>(buf.data()),
                           buf.size()));
    ++replayed;
  }
  EXPECT_GE(replayed, 2u) << "corpus for " << target.name << " looks empty";
}

TEST_P(CorpusReplay, RandomSmoke) {
  const TargetEntry& target = GetParam();
  // The state-machine target runs a whole simulation per input; a handful is
  // plenty here (the seed-sweep suite covers it in depth).
  const bool deep = std::string_view(target.name) == "fuzz_state_machine" ||
                    std::string_view(target.name) == "fuzz_link_pair";
  const std::uint64_t iters = deep ? 16 : 512;
  std::uint64_t state = 0xa9c4a0full ^ std::string_view(target.name).size();
  std::vector<std::uint8_t> buf;
  for (std::uint64_t i = 0; i < iters; ++i) {
    buf.resize(splitmix64(state) % 257);
    for (auto& b : buf) b = static_cast<std::uint8_t>(splitmix64(state));
    EXPECT_EQ(0, target.fn(buf.data(), buf.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTargets, CorpusReplay, ::testing::ValuesIn(kTargets),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace apxa::fuzz
