// Work-stealing executor: correctness under deliberately skewed load.
//
// The stealing ThreadNetwork lets idle workers claim runnable parties from
// other shards, so one hot party no longer serializes its home worker's
// whole shard.  The contract that must survive stealing is the transport's
// single-threaded upcall guarantee: a party's on_start/on_message run on at
// most one thread at a time, however many workers fight over it.  These
// tests hammer that guarantee with a token storm aimed at half the parties
// (per-party reentrancy guards count violations), and pin down the
// simulator-parity crash budgets and the set_shards validation surface
// under worker counts both far below and far above n.
//
// Runs in the TSan lane (name matched by the CI regex) — the ownership
// token handoff is exactly the code a data race would corrupt.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/bytes.hpp"
#include "core/async_byz.hpp"
#include "core/bounds.hpp"
#include "runtime/thread_net.hpp"

namespace apxa::rt {
namespace {

using namespace std::chrono_literals;

// Token-storm process for the stealing stress: party 0 seeds tokens that
// hop deterministically, concentrating on EVEN parties (all homed on shard
// 0 when set_shards(2)) so progress requires shard 1's worker to steal.
// Every upcall enters a per-party reentrancy guard; any concurrent entry is
// a violation of the single-threaded-per-process contract.
class TokenStormProcess final : public net::Process {
 public:
  struct Shared {
    std::atomic<std::uint32_t> overlap_violations{0};
    std::atomic<std::uint64_t> hops{0};
  };

  TokenStormProcess(ProcessId self, std::uint32_t n, std::uint64_t quota,
                    Shared* shared)
      : self_(self), n_(n), quota_(quota), shared_(shared) {}

  void on_start(net::Context& ctx) override {
    Guard g(this);
    if (self_ != 0) return;
    // One multicast so every party is reachable even if no token lands on
    // it, then the storm: 64 tokens aimed at the even parties.
    ctx.multicast(encode_ttl(0));
    for (std::uint32_t i = 0; i < 64; ++i) {
      // Even parties other than the seeder itself.
      ctx.send(2 * (1 + i % (n_ / 2 - 1)), encode_ttl(40));
    }
  }

  void on_message(net::Context& ctx, ProcessId /*from*/,
                  BytesView payload) override {
    Guard g(this);
    shared_->hops.fetch_add(1, std::memory_order_relaxed);
    received_.fetch_add(1, std::memory_order_relaxed);
    // Widen the window a concurrent second owner would need to hit.
    for (int spin = 0; spin < 64; ++spin) {
      std::atomic_signal_fence(std::memory_order_seq_cst);
    }
    const std::uint64_t ttl = decode_ttl(payload);
    if (ttl == 0) return;
    // Every 8th hop visits an odd party; the rest cycle through the evens.
    const ProcessId next = (ttl % 8 == 0)
                               ? static_cast<ProcessId>(((self_ + 2) | 1u) % n_)
                               : static_cast<ProcessId>(((self_ + 2) % n_) & ~1u);
    ctx.send(next, encode_ttl(ttl - 1));
  }

  // Completion = absorbed `quota` messages; monotone, as the transport's
  // done-probe contract requires.
  [[nodiscard]] bool has_output() const override {
    return received_.load(std::memory_order_relaxed) >= quota_;
  }

 private:
  struct Guard {
    explicit Guard(TokenStormProcess* p) : p_(p) {
      if (p_->in_upcall_.exchange(true, std::memory_order_acq_rel)) {
        p_->shared_->overlap_violations.fetch_add(1,
                                                  std::memory_order_relaxed);
      }
    }
    ~Guard() { p_->in_upcall_.store(false, std::memory_order_release); }
    TokenStormProcess* p_;
  };

  static Bytes encode_ttl(std::uint64_t ttl) {
    ByteWriter w;
    w.put_varint(ttl);
    return std::move(w).take();
  }
  static std::uint64_t decode_ttl(BytesView payload) {
    ByteReader r(payload);
    return r.get_varint();
  }

  ProcessId self_;
  std::uint32_t n_;
  std::uint64_t quota_;
  Shared* shared_;
  std::atomic<std::uint64_t> received_{0};
  std::atomic<bool> in_upcall_{false};
};

TEST(ThreadSteal, SkewedStormKeepsUpcallsSingleThreaded) {
  // 8 parties, 2 shards: evens home on shard 0, odds on shard 1.  The storm
  // quota forces the even parties through hundreds of upcalls while the odd
  // parties finish almost immediately — shard 1's worker spends the run
  // stealing hot even parties.  Zero guard violations or the ownership
  // token is broken.
  const SystemParams p{8, 0};
  TokenStormProcess::Shared shared;
  ThreadNetwork net(p);
  net.set_shards(2);
  for (ProcessId i = 0; i < p.n; ++i) {
    const std::uint64_t quota = (i % 2 == 0) ? 40 : 1;
    net.add_process(std::make_unique<TokenStormProcess>(i, p.n, quota, &shared));
  }
  ASSERT_TRUE(net.run(30s));
  EXPECT_EQ(shared.overlap_violations.load(), 0u);
  // The storm really ran: well beyond the single seeding multicast.
  EXPECT_GE(shared.hops.load(), 64u);
}

TEST(ThreadSteal, StormSurvivesManyWorkersPerParty) {
  // Workers far beyond n: every party is permanently contested, so any
  // claim/release bug shows up as a guard violation or a lost wakeup hang.
  const SystemParams p{4, 0};
  TokenStormProcess::Shared shared;
  ThreadNetwork net(p);
  net.set_shards(16);
  for (ProcessId i = 0; i < p.n; ++i) {
    const std::uint64_t quota = (i % 2 == 0) ? 40 : 1;
    net.add_process(std::make_unique<TokenStormProcess>(i, p.n, quota, &shared));
  }
  ASSERT_TRUE(net.run(30s));
  EXPECT_EQ(shared.overlap_violations.load(), 0u);
}

TEST(ThreadSteal, CrashBudgetExactUnderStealing) {
  // Simulator-parity crash accounting must not depend on which worker runs
  // the victim: with 2 shards (constant stealing on a 5-party protocol) the
  // victim's third send still fires the crash mid-multicast.
  for (const std::uint32_t shards : {2u, 7u}) {
    SCOPED_TRACE(shards);
    const SystemParams p{5, 1};
    ThreadNetwork net(p);
    net.set_shards(shards);
    for (ProcessId i = 0; i < p.n; ++i) {
      net.add_process(std::make_unique<core::RoundAaProcess>(
          core::crash_aa_config(p, static_cast<double>(i), 4)));
    }
    net.set_multicast_order(4, {0, 1, 2, 3});
    net.crash_after_sends(4, 2);
    ASSERT_TRUE(net.run(30s));
    EXPECT_FALSE(net.is_correct(4));
    const auto outs = net.correct_outputs();
    ASSERT_EQ(outs.size(), 4u);
    for (double y : outs) {
      EXPECT_GE(y, 0.0);
      EXPECT_LE(y, 4.0);
    }
  }
}

TEST(ThreadSteal, ConvergesWithSingleWorker) {
  // shards == 1 degenerates to a cooperative single-threaded executor — the
  // stealing path never fires and the run must still converge.
  const SystemParams p{5, 1};
  ThreadNetwork net(p);
  net.set_shards(1);
  const double eps = 1e-3;
  const Round rounds = core::rounds_for_bound(4.0, eps, core::Averager::kMean, p);
  for (ProcessId i = 0; i < p.n; ++i) {
    net.add_process(std::make_unique<core::RoundAaProcess>(
        core::crash_aa_config(p, static_cast<double>(i), rounds)));
  }
  ASSERT_TRUE(net.run(30s));
  const auto outs = net.correct_outputs();
  ASSERT_EQ(outs.size(), p.n);
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_LE(std::abs(outs[i] - outs[0]), eps);
  }
}

TEST(ThreadSteal, ValidatesShardCount) {
  ThreadNetwork net(SystemParams{3, 0});
  EXPECT_THROW(net.set_shards(0), std::invalid_argument);
  EXPECT_THROW(net.set_shards(4097), std::invalid_argument);  // > kMaxShards
  net.set_shards(9);  // more workers than parties is legal
  EXPECT_EQ(net.shards(), 9u);
}

}  // namespace
}  // namespace apxa::rt
