// Flight recorder: the crash-dump path of the obs subsystem.  Covers the
// boundedness guarantee (a Byzantine round-number storm flooding one party id
// cannot blow up the dump beyond per_party events per id), the harness hook
// (a failed verdict with RunConfig::flight_dump set leaves a parseable JSONL
// file behind), and the APXA_ENSURE / APXA_ASSERT arming path including
// nested-arm restore.  Test names match the CI TSan regex (FlightRecorder).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ensure.hpp"
#include "harness/harness.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace apxa::obs {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Every line of a dump must be one JSON object; the header line carries the
// reason and the bound actually applied.
void expect_parseable_dump(const std::vector<std::string>& lines,
                           const std::string& reason_substr) {
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines[0].find("\"flight_record\""), std::string::npos);
  EXPECT_NE(lines[0].find(reason_substr), std::string::npos) << lines[0];
  for (const auto& l : lines) {
    ASSERT_FALSE(l.empty());
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
}

TEST(FlightRecorder, NullSinkOrEmptyPathRefuses) {
  TraceSink sink;
  sink.record(EventKind::kSend, 0, 1, 0, 0.0, 0.0);
  EXPECT_FALSE(dump_flight_record(nullptr, temp_path("fr_null.jsonl"), "x"));
  EXPECT_FALSE(dump_flight_record(&sink, "", "x"));
}

TEST(FlightRecorder, DumpKeepsNewestEventsPerParty) {
  TraceSink sink;
  for (int i = 0; i < 100; ++i) {
    sink.record(EventKind::kSend, static_cast<std::uint32_t>(i % 2), 1, i, 0.0,
                0.0);
  }
  const std::string path = temp_path("fr_per_party.jsonl");
  ASSERT_TRUE(dump_flight_record(&sink, path, "unit test", 8));

  const auto lines = read_lines(path);
  expect_parseable_dump(lines, "unit test");
  ASSERT_EQ(lines.size(), 1u + 16u);  // header + 8 events for each party id
  // Survivors are the newest per party: rounds 84..99 across the two ids.
  EXPECT_NE(lines[1].find("\"round\":84"), std::string::npos) << lines[1];
  EXPECT_NE(lines.back().find("\"round\":99"), std::string::npos);
}

TEST(FlightRecorder, BoundedUnderByzantineRoundStorm) {
  // A Byzantine party spraying absurd round numbers floods its own party id
  // with events; the dump must stay at per_party lines for that id no matter
  // how many events the storm recorded.
  TraceSink sink;
  constexpr std::uint32_t kByz = 7;
  for (int i = 0; i < 50'000; ++i) {
    sink.record(EventKind::kSend, kByz, i % 8,
                static_cast<std::int64_t>(1) << 40, 0.0, 0.0);
  }
  for (int i = 0; i < 10; ++i) {
    sink.record(EventKind::kDeliver, 1, 2, i, 0.0, 0.0);
  }
  const std::string path = temp_path("fr_storm.jsonl");
  ASSERT_TRUE(dump_flight_record(&sink, path, "storm", 16));

  const auto lines = read_lines(path);
  expect_parseable_dump(lines, "storm");
  std::size_t byz_lines = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].find("\"party\":7") != std::string::npos) ++byz_lines;
  }
  EXPECT_LE(byz_lines, 16u);
  EXPECT_EQ(lines.size(), 1u + byz_lines + 10u);  // storm + the 10 sane events
}

TEST(FlightRecorder, HarnessDumpsOnFailedVerdict) {
  using namespace apxa::harness;
  // One round of 5-party mean averaging cannot reach eps = 1e-9 from spread-1
  // inputs, so the eps-agreement verdict fails by construction.
  const SystemParams p{5, 1};
  RunConfig cfg;
  cfg.params = p;
  cfg.protocol = ProtocolKind::kCrashRound;
  cfg.fixed_rounds = 1;
  cfg.epsilon = 1e-9;
  cfg.inputs = linear_inputs(p.n, 0.0, 1.0);

  obs::TraceSink trace;
  cfg.trace = &trace;
  cfg.flight_dump = temp_path("fr_verdict.jsonl");
  std::remove(cfg.flight_dump.c_str());

  const RunReport rep = run(cfg);
  EXPECT_TRUE(rep.validity_ok);
  ASSERT_FALSE(rep.agreement_ok);

  const auto lines = read_lines(cfg.flight_dump);
  expect_parseable_dump(lines, "eps-agreement verdict failed");
  EXPECT_GT(lines.size(), 1u);  // the trace events that led to the verdict
}

TEST(FlightRecorder, HarnessSkipsDumpOnCleanRun) {
  using namespace apxa::harness;
  const SystemParams p{5, 1};
  RunConfig cfg;
  cfg.params = p;
  cfg.protocol = ProtocolKind::kCrashRound;
  cfg.fixed_rounds = 8;
  cfg.epsilon = 0.5;
  cfg.inputs = linear_inputs(p.n, 0.0, 1.0);

  obs::TraceSink trace;
  cfg.trace = &trace;
  cfg.flight_dump = temp_path("fr_clean.jsonl");
  std::remove(cfg.flight_dump.c_str());

  const RunReport rep = run(cfg);
  EXPECT_TRUE(rep.validity_ok);
  EXPECT_TRUE(rep.agreement_ok);
  std::ifstream in(cfg.flight_dump);
  EXPECT_FALSE(in.good()) << "clean run must not leave a flight dump";
}

TEST(FlightRecorder, ScopedArmDumpsOnEnsureFailure) {
  TraceSink sink;
  sink.record(EventKind::kSend, 3, 1, 5, 0.25, 1.5);
  const std::string path = temp_path("fr_ensure.jsonl");
  std::remove(path.c_str());
  {
    ScopedFlightArm arm(&sink, path);
    auto poke = [] { APXA_ENSURE(1 + 1 == 3, "forced for test"); };
    EXPECT_THROW(poke(), std::invalid_argument);
  }
  const auto lines = read_lines(path);
  expect_parseable_dump(lines, "precondition failed");
  EXPECT_NE(lines[0].find("1 + 1 == 3"), std::string::npos) << lines[0];
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"party\":3"), std::string::npos);
}

TEST(FlightRecorder, ScopedArmDumpsOnAssertFailure) {
  TraceSink sink;
  sink.record(EventKind::kDeliver, 2, 0, 1, 0.0, 0.5);
  const std::string path = temp_path("fr_assert.jsonl");
  std::remove(path.c_str());
  {
    ScopedFlightArm arm(&sink, path);
    auto poke = [] { APXA_ASSERT(false, "forced invariant"); };
    EXPECT_THROW(poke(), std::logic_error);
  }
  expect_parseable_dump(read_lines(path), "invariant failed");
}

TEST(FlightRecorder, DisarmedAfterScopeEnds) {
  TraceSink sink;
  sink.record(EventKind::kSend, 0, 1, 0, 0.0, 0.0);
  const std::string path = temp_path("fr_disarmed.jsonl");
  {
    ScopedFlightArm arm(&sink, path);
  }
  std::remove(path.c_str());
  auto poke = [] { APXA_ENSURE(false, "after disarm"); };
  EXPECT_THROW(poke(), std::invalid_argument);
  std::ifstream in(path);
  EXPECT_FALSE(in.good()) << "disarmed failure must not dump";
}

TEST(FlightRecorder, NestedArmsRestoreOuter) {
  TraceSink outer_sink;
  outer_sink.record(EventKind::kSend, 1, 2, 0, 0.0, 0.0);
  TraceSink inner_sink;
  inner_sink.record(EventKind::kDeliver, 3, 4, 0, 0.0, 0.0);
  const std::string outer_path = temp_path("fr_outer.jsonl");
  const std::string inner_path = temp_path("fr_inner.jsonl");
  std::remove(outer_path.c_str());
  std::remove(inner_path.c_str());

  ScopedFlightArm outer(&outer_sink, outer_path);
  {
    ScopedFlightArm inner(&inner_sink, inner_path);
    auto poke = [] { APXA_ENSURE(false, "inner"); };
    EXPECT_THROW(poke(), std::invalid_argument);
  }
  {
    std::ifstream in(inner_path);
    EXPECT_TRUE(in.good());
  }
  // After the inner scope unwinds, failures dump through the OUTER arm again.
  auto poke = [] { APXA_ENSURE(false, "outer"); };
  EXPECT_THROW(poke(), std::invalid_argument);
  const auto lines = read_lines(outer_path);
  expect_parseable_dump(lines, "precondition failed");
  EXPECT_NE(lines[1].find("\"kind\":\"send\""), std::string::npos);
}

}  // namespace
}  // namespace apxa::obs
