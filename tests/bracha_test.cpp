// Bracha reliable broadcast: validity, agreement, totality, equivocation
// resistance, multi-instance multiplexing, and message complexity.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "core/codec.hpp"
#include "net/sim.hpp"
#include "rb/bracha.hpp"
#include "sched/random_scheduler.hpp"

namespace apxa::rb {
namespace {

/// Harness process: runs a BrachaHub, optionally broadcasting values at
/// start; records every delivery.
class RbParty final : public net::Process {
 public:
  RbParty(SystemParams params, std::map<std::uint32_t, double> to_broadcast)
      : to_broadcast_(std::move(to_broadcast)),
        hub_(params, [this](net::Context&, std::uint32_t inst, ProcessId origin,
                            double value) {
          delivered_[{inst, origin}] = value;
        }) {}

  void on_start(net::Context& ctx) override {
    for (const auto& [inst, v] : to_broadcast_) hub_.broadcast(ctx, inst, v);
  }

  void on_message(net::Context& ctx, ProcessId from, BytesView payload) override {
    hub_.handle(ctx, from, payload);
  }

  std::map<std::uint32_t, double> to_broadcast_;
  std::map<std::pair<std::uint32_t, ProcessId>, double> delivered_;
  BrachaHub hub_;
};

/// Equivocating byzantine sender: SEND(lo) to the first half, SEND(hi) to the
/// second half, then silence (no echoes for anyone).
class RbEquivocator final : public net::Process {
 public:
  void on_start(net::Context& ctx) override {
    const auto n = ctx.params().n;
    for (ProcessId to = 0; to < n; ++to) {
      if (to == ctx.self()) continue;
      const double v = to < n / 2 ? 0.0 : 1.0;
      ctx.send(to, core::encode_rb(core::RbMsg{core::MsgType::kRbSend, 0,
                                               ctx.self(), v}));
    }
  }
  void on_message(net::Context&, ProcessId, BytesView) override {}
};

struct Net {
  std::unique_ptr<net::SimNetwork> sim;
  std::vector<RbParty*> parties;
};

Net make_net(SystemParams p, const std::map<ProcessId, double>& broadcasters,
             std::uint64_t seed = 1) {
  Net out;
  out.sim = std::make_unique<net::SimNetwork>(
      p, std::make_unique<sched::RandomScheduler>(seed));
  for (ProcessId i = 0; i < p.n; ++i) {
    std::map<std::uint32_t, double> bc;
    if (const auto it = broadcasters.find(i); it != broadcasters.end()) {
      bc[0] = it->second;
    }
    auto party = std::make_unique<RbParty>(p, std::move(bc));
    out.parties.push_back(party.get());
    out.sim->add_process(std::move(party));
  }
  return out;
}

TEST(Bracha, ValidityFaultFree) {
  auto net = make_net({4, 1}, {{0, 7.5}});
  net.sim->start();
  net.sim->run();
  for (const auto* p : net.parties) {
    ASSERT_EQ(p->delivered_.size(), 1u);
    EXPECT_EQ(p->delivered_.at({0, 0}), 7.5);
  }
}

TEST(Bracha, AllBroadcastersDeliverEverywhere) {
  auto net = make_net({7, 2}, {{0, 1.0}, {3, 2.0}, {6, 3.0}});
  net.sim->start();
  net.sim->run();
  for (const auto* p : net.parties) {
    EXPECT_EQ(p->delivered_.size(), 3u);
    EXPECT_EQ(p->delivered_.at({0, 0}), 1.0);
    EXPECT_EQ(p->delivered_.at({0, 3}), 2.0);
    EXPECT_EQ(p->delivered_.at({0, 6}), 3.0);
  }
}

TEST(Bracha, MultiInstanceMultiplexing) {
  const SystemParams p{4, 1};
  Net out;
  out.sim = std::make_unique<net::SimNetwork>(
      p, std::make_unique<sched::RandomScheduler>(5));
  for (ProcessId i = 0; i < p.n; ++i) {
    std::map<std::uint32_t, double> bc;
    if (i == 2) bc = {{0, 10.0}, {1, 20.0}, {5, 50.0}};
    auto party = std::make_unique<RbParty>(p, std::move(bc));
    out.parties.push_back(party.get());
    out.sim->add_process(std::move(party));
  }
  out.sim->start();
  out.sim->run();
  for (const auto* q : out.parties) {
    EXPECT_EQ(q->delivered_.at({0, 2}), 10.0);
    EXPECT_EQ(q->delivered_.at({1, 2}), 20.0);
    EXPECT_EQ(q->delivered_.at({5, 2}), 50.0);
  }
}

TEST(Bracha, TotalityUnderCrash) {
  // The origin crashes mid-SEND-multicast after reaching only 2 receivers;
  // if any correct party delivers, all must.  (With 2/3 correct receivers
  // echoing, delivery goes through here.)
  auto net = make_net({4, 1}, {{0, 9.0}});
  net.sim->crash_after_sends(0, 2);  // SENDs to parties 1 and 2 only
  net.sim->start();
  net.sim->run();
  std::size_t delivered = 0;
  for (ProcessId i = 1; i < 4; ++i) {
    if (net.parties[i]->delivered_.contains({0, 0})) ++delivered;
  }
  // Totality: all-or-nothing among the 3 correct parties.
  EXPECT_TRUE(delivered == 0 || delivered == 3) << delivered << " delivered";
}

TEST(Bracha, NoDeliveryWithoutQuorum) {
  // Origin reaches only 1 receiver before crashing: 2t+1 = 3 READYs can
  // never accumulate from a single echo in a 4-party system... the correct
  // parties must not deliver a value nobody can confirm.
  auto net = make_net({4, 1}, {{0, 9.0}});
  net.sim->crash_after_sends(0, 1);
  net.sim->start();
  net.sim->run();
  for (ProcessId i = 1; i < 4; ++i) {
    EXPECT_TRUE(net.parties[i]->delivered_.empty());
  }
}

TEST(Bracha, EquivocationNeverSplitsDelivery) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const SystemParams p{4, 1};
    net::SimNetwork sim(p, std::make_unique<sched::RandomScheduler>(seed));
    std::vector<RbParty*> parties;
    sim.add_process(std::make_unique<RbEquivocator>());
    sim.mark_byzantine(0);
    for (ProcessId i = 1; i < 4; ++i) {
      auto party = std::make_unique<RbParty>(p, std::map<std::uint32_t, double>{});
      parties.push_back(party.get());
      sim.add_process(std::move(party));
    }
    sim.start();
    sim.run();
    // Agreement: at most one distinct value delivered across correct parties.
    std::set<double> values;
    for (const auto* q : parties) {
      for (const auto& [key, v] : q->delivered_) values.insert(v);
    }
    EXPECT_LE(values.size(), 1u) << "seed " << seed;
  }
}

TEST(Bracha, MessageComplexityQuadratic) {
  const SystemParams p{7, 2};
  auto net = make_net(p, {{0, 1.0}});
  net.sim->start();
  net.sim->run();
  // SEND: n-1; ECHO: n per party... upper bound 3 multicasts per party.
  const auto sent = net.sim->metrics().messages_sent;
  EXPECT_LE(sent, 3u * 7u * 6u);
  EXPECT_GE(sent, 2u * 6u * 6u);  // at least echoes + readies from correct
}

TEST(Bracha, OneEchoVotePerVoterPerSlot) {
  // A byzantine voter that echoes value A and later value B must count for A
  // only: otherwise flip-flopped votes (and vote floods of fresh forged
  // values) both grow unbounded per-slot state and let one voter contribute
  // to two different quorums.  Here echoes for B reach the n - t = 3 count
  // only if voters 1 and 2's second votes are (incorrectly) honored — the
  // hub must stay silent instead of multicasting READY(B).
  class CountingContext final : public net::Context {
   public:
    void send(ProcessId, Bytes) override { ++sends; }
    void multicast(const Bytes&) override { ++multicasts; }
    [[nodiscard]] ProcessId self() const override { return 0; }
    [[nodiscard]] SystemParams params() const override { return {4, 1}; }
    int sends = 0, multicasts = 0;
  } ctx;
  int deliveries = 0;
  BrachaHub hub({4, 1}, [&](net::Context&, std::uint32_t, ProcessId,
                            const double&) { ++deliveries; });
  auto echo = [](ProcessId, double v) {
    return core::encode_rb(core::RbMsg{core::MsgType::kRbEcho, 0, 2, v});
  };
  hub.handle(ctx, 1, echo(1, 1.0));  // A from 1
  hub.handle(ctx, 2, echo(2, 1.0));  // A from 2: A has 2 < 3 votes
  hub.handle(ctx, 1, echo(1, 2.0));  // flip to B — must be ignored
  hub.handle(ctx, 2, echo(2, 2.0));  // flip to B — must be ignored
  hub.handle(ctx, 3, echo(3, 2.0));  // B's only legitimate vote
  EXPECT_EQ(ctx.multicasts, 0) << "a flip-flopped quorum sent READY";
  EXPECT_EQ(deliveries, 0);
}

TEST(Bracha, OutOfRangeOriginDiscardedNotFatal) {
  // A forged message naming origin >= n is byzantine garbage; the hub must
  // consume and drop it, not throw out of an honest party's message loop.
  class NoopContext final : public net::Context {
   public:
    void send(ProcessId, Bytes) override { FAIL() << "unexpected send"; }
    void multicast(const Bytes&) override { FAIL() << "unexpected multicast"; }
    [[nodiscard]] ProcessId self() const override { return 0; }
    [[nodiscard]] SystemParams params() const override { return {4, 1}; }
  } ctx;
  int deliveries = 0;
  BrachaHub hub({4, 1}, [&](net::Context&, std::uint32_t, ProcessId,
                            const double&) { ++deliveries; });
  const Bytes forged =
      core::encode_rb(core::RbMsg{core::MsgType::kRbEcho, 0, /*origin=*/9, 1.0});
  EXPECT_TRUE(hub.handle(ctx, 1, forged));  // consumed: it IS an RB message
  EXPECT_EQ(hub.live_slots(), 0u);          // ...but created no state
  EXPECT_EQ(deliveries, 0);
}

TEST(Bracha, RequiresNGreaterThan3T) {
  const SystemParams bad{6, 2};
  EXPECT_THROW(BrachaHub(bad, [](net::Context&, std::uint32_t, ProcessId, double) {}),
               std::invalid_argument);
}

// --- vector hub (rb::VecBrachaHub, the equalized-collect transport) ---------

/// Vector analogue of RbParty: broadcasts R^d points, records deliveries.
class VecRbParty final : public net::Process {
 public:
  VecRbParty(SystemParams params, std::map<std::uint32_t, std::vector<double>> bc)
      : to_broadcast_(std::move(bc)),
        hub_(params, [this](net::Context&, std::uint32_t inst, ProcessId origin,
                            const std::vector<double>& value) {
          delivered_[{inst, origin}].push_back(value);
        }) {}

  void on_start(net::Context& ctx) override {
    for (const auto& [inst, v] : to_broadcast_) hub_.broadcast(ctx, inst, v);
  }
  void on_message(net::Context& ctx, ProcessId from, BytesView payload) override {
    hub_.handle(ctx, from, payload);
  }

  std::map<std::uint32_t, std::vector<double>> to_broadcast_;
  /// All deliveries per (instance, origin) — uniqueness says size <= 1.
  std::map<std::pair<std::uint32_t, ProcessId>, std::vector<std::vector<double>>>
      delivered_;
  VecBrachaHub hub_;
};

TEST(VecBracha, ValidityFaultFree) {
  const SystemParams p{4, 1};
  net::SimNetwork sim(p, std::make_unique<sched::RandomScheduler>(3));
  std::vector<VecRbParty*> parties;
  for (ProcessId i = 0; i < p.n; ++i) {
    std::map<std::uint32_t, std::vector<double>> bc;
    if (i == 0) bc[0] = {1.5, -2.5, 3.5};
    auto party = std::make_unique<VecRbParty>(p, std::move(bc));
    parties.push_back(party.get());
    sim.add_process(std::move(party));
  }
  sim.start();
  sim.run();
  for (const auto* q : parties) {
    ASSERT_EQ(q->delivered_.size(), 1u);
    const auto& vs = q->delivered_.at({0, 0});
    ASSERT_EQ(vs.size(), 1u);  // uniqueness: exactly one delivery
    EXPECT_EQ(vs[0], (std::vector<double>{1.5, -2.5, 3.5}));
  }
}

TEST(VecBracha, EquivocationDeliversAtMostOneValuePerOrigin) {
  // A byzantine origin SENDs a different vector to every receiver.  Per
  // party: at most one delivery for (instance, origin).  Across parties:
  // at most one distinct value delivered anywhere (agreement).
  class VecEquivocator final : public net::Process {
   public:
    void on_start(net::Context& ctx) override {
      for (ProcessId to = 0; to < ctx.params().n; ++to) {
        if (to == ctx.self()) continue;
        const std::vector<double> v{static_cast<double>(to), -1.0};
        ctx.send(to, core::encode_rb_vec(core::RbVecMsg{
                         core::MsgType::kRbVecSend, 0, ctx.self(), v}));
      }
    }
    void on_message(net::Context&, ProcessId, BytesView) override {}
  };

  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const SystemParams p{4, 1};
    net::SimNetwork sim(p, std::make_unique<sched::RandomScheduler>(seed));
    std::vector<VecRbParty*> parties;
    sim.add_process(std::make_unique<VecEquivocator>());
    sim.mark_byzantine(0);
    for (ProcessId i = 1; i < 4; ++i) {
      auto party = std::make_unique<VecRbParty>(
          p, std::map<std::uint32_t, std::vector<double>>{});
      parties.push_back(party.get());
      sim.add_process(std::move(party));
    }
    sim.start();
    sim.run();
    std::set<std::vector<double>> values;
    for (const auto* q : parties) {
      for (const auto& [key, vs] : q->delivered_) {
        EXPECT_LE(vs.size(), 1u) << "seed " << seed << ": double delivery";
        for (const auto& v : vs) values.insert(v);
      }
    }
    EXPECT_LE(values.size(), 1u) << "seed " << seed << ": delivery split";
  }
}

TEST(VecBracha, ScalarAndVectorHubsIgnoreEachOthersWire) {
  // Tag ranges are disjoint: a scalar hub must not consume RBVEC traffic and
  // vice versa — the two can safely coexist in one process.
  int calls = 0;
  BrachaHub scalar({4, 1}, [&](net::Context&, std::uint32_t, ProcessId,
                               const double&) { ++calls; });
  VecBrachaHub vec({4, 1}, [&](net::Context&, std::uint32_t, ProcessId,
                               const std::vector<double>&) { ++calls; });
  const Bytes svec = core::encode_rb_vec(
      core::RbVecMsg{core::MsgType::kRbVecEcho, 0, 1, {1.0, 2.0}});
  const Bytes sscalar =
      core::encode_rb(core::RbMsg{core::MsgType::kRbEcho, 0, 1, 1.0});
  // Rejection happens at decode, before any send reaches the context.
  class NoopContext final : public net::Context {
   public:
    void send(ProcessId, Bytes) override { FAIL() << "unexpected send"; }
    void multicast(const Bytes&) override { FAIL() << "unexpected multicast"; }
    [[nodiscard]] ProcessId self() const override { return 0; }
    [[nodiscard]] SystemParams params() const override { return {4, 1}; }
  } ctx;
  EXPECT_FALSE(scalar.handle(ctx, 1, svec));
  EXPECT_FALSE(vec.handle(ctx, 1, sscalar));
  EXPECT_EQ(calls, 0);
}

TEST(Bracha, ForgedSendIgnored) {
  // A SEND claiming origin 0 but arriving from party 1 must not trigger
  // echoes (authenticated channels).
  class Forger final : public net::Process {
   public:
    void on_start(net::Context& ctx) override {
      for (ProcessId to = 0; to < ctx.params().n; ++to) {
        if (to == ctx.self()) continue;
        ctx.send(to, core::encode_rb(core::RbMsg{core::MsgType::kRbSend, 0,
                                                 /*origin=*/0, 666.0}));
      }
    }
    void on_message(net::Context&, ProcessId, BytesView) override {}
  };

  const SystemParams p{4, 1};
  net::SimNetwork sim(p, std::make_unique<sched::RandomScheduler>(2));
  std::vector<RbParty*> parties;
  auto p0 = std::make_unique<RbParty>(p, std::map<std::uint32_t, double>{});
  parties.push_back(p0.get());
  sim.add_process(std::move(p0));
  sim.add_process(std::make_unique<Forger>());
  sim.mark_byzantine(1);
  for (ProcessId i = 2; i < 4; ++i) {
    auto party = std::make_unique<RbParty>(p, std::map<std::uint32_t, double>{});
    parties.push_back(party.get());
    sim.add_process(std::move(party));
  }
  sim.start();
  sim.run();
  for (const auto* q : parties) EXPECT_TRUE(q->delivered_.empty());
}

}  // namespace
}  // namespace apxa::rb
