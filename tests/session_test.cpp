// Multi-instance AA-as-a-service: harness::Session semantics.
//
// What these tests pin down:
//  - a size-1 Session is BIT-IDENTICAL to plain harness::run (the delegation
//    path that keeps existing bench JSON unchanged);
//  - the multiplexed router path reaches the same verdicts as the plain path
//    and is deterministic: bit-identical across repeats, and across instance
//    registration order under a slot-order-free scheduler;
//  - batching changes packets, never logical counts or verdicts, and packs
//    >= 2 msgs/packet at service scale (the CI gate's invariant);
//  - session-level crash budgets count LOGICAL sends across instances;
//  - the multiplexing constraints are enforced.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/async_byz.hpp"
#include "harness/harness.hpp"
#include "harness/session.hpp"

namespace apxa::harness {
namespace {

/// rounds == 0 means "enough rounds to provably reach epsilon" (the tests
/// that assert agreement_ok use it; equality-only tests pick small counts).
RunConfig scalar_cfg(std::uint32_t n, std::uint32_t t, double lo, double hi,
                     Round rounds) {
  RunConfig cfg;
  cfg.params = {n, t};
  cfg.protocol = ProtocolKind::kCrashRound;
  cfg.mode = core::TerminationMode::kFixedRounds;
  cfg.epsilon = 1e-2;
  cfg.fixed_rounds = rounds > 0 ? rounds
                                : core::rounds_for_bound(hi - lo, cfg.epsilon,
                                                         core::Averager::kMean,
                                                         cfg.params);
  cfg.inputs = linear_inputs(n, lo, hi);
  cfg.sched = SchedKind::kRandom;
  cfg.seed = 42;
  return cfg;
}

VectorRunConfig vector_cfg(std::uint32_t n, std::uint32_t t, Round rounds) {
  VectorRunConfig cfg;
  cfg.params = {n, t};
  cfg.protocol = ProtocolKind::kVectorCrash;
  cfg.dim = 2;
  cfg.epsilon = 1e-2;
  cfg.fixed_rounds = rounds > 0 ? rounds
                                : core::rounds_for_bound(1.0, cfg.epsilon,
                                                         core::Averager::kMean,
                                                         cfg.params);
  cfg.inputs = corner_split_inputs(n, cfg.dim, n / 2, 0.0, 1.0);
  cfg.sched = SchedKind::kRandom;
  cfg.seed = 42;
  return cfg;
}

/// Full bitwise comparison of two scalar reports (verdicts, traces, logical
/// transport counters).
void expect_scalar_equal(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.all_output, b.all_output);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.validity_ok, b.validity_ok);
  EXPECT_EQ(a.worst_pair_gap, b.worst_pair_gap);
  EXPECT_EQ(a.agreement_ok, b.agreement_ok);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.spread_by_round, b.spread_by_round);
  EXPECT_EQ(a.round_factors, b.round_factors);
  EXPECT_EQ(a.max_round_reached, b.max_round_reached);
  EXPECT_EQ(a.metrics.messages_sent, b.metrics.messages_sent);
  EXPECT_EQ(a.metrics.packets_sent, b.metrics.packets_sent);
  EXPECT_EQ(a.metrics.payload_bytes, b.metrics.payload_bytes);
  EXPECT_EQ(a.metrics.sent_by, b.metrics.sent_by);
  EXPECT_EQ(a.metrics.sent_by_round, b.metrics.sent_by_round);
  EXPECT_EQ(a.metrics.sent_by_instance, b.metrics.sent_by_instance);
}

TEST(Session, SizeOneDelegatesBitIdentical) {
  const RunConfig cfg = scalar_cfg(5, 1, 0.0, 1.0, 4);
  const RunReport plain = run(cfg);

  Session s;
  EXPECT_EQ(s.add(cfg), 0u);
  const SessionReport rep = s.run();
  ASSERT_EQ(rep.scalar_reports.size(), 1u);
  ASSERT_TRUE(rep.scalar_reports[0].has_value());
  ASSERT_FALSE(rep.vector_reports[0].has_value());
  expect_scalar_equal(*rep.scalar_reports[0], plain);
  EXPECT_EQ(rep.all_output, plain.all_output);
  EXPECT_EQ(rep.finish_times, std::vector<double>{plain.finish_time});
  // The legacy path sends one packet per message: efficiency is exactly 1.
  EXPECT_EQ(rep.msgs_per_packet, 1.0);
}

TEST(Session, SizeOneVectorDelegatesBitIdentical) {
  const VectorRunConfig cfg = vector_cfg(5, 1, 4);
  const VectorRunReport plain = run(cfg);

  Session s;
  EXPECT_EQ(s.add(cfg), 0u);
  const SessionReport rep = s.run();
  ASSERT_TRUE(rep.vector_reports[0].has_value());
  const VectorRunReport& r = *rep.vector_reports[0];
  EXPECT_EQ(r.outputs, plain.outputs);
  EXPECT_EQ(r.box_validity_ok, plain.box_validity_ok);
  EXPECT_EQ(r.convex_validity_ok, plain.convex_validity_ok);
  EXPECT_EQ(r.agreement_ok, plain.agreement_ok);
  EXPECT_EQ(r.worst_linf_gap, plain.worst_linf_gap);
  EXPECT_EQ(r.linf_spread_by_round, plain.linf_spread_by_round);
  EXPECT_EQ(r.finish_time, plain.finish_time);
  EXPECT_EQ(r.metrics.messages_sent, plain.metrics.messages_sent);
}

TEST(Session, ForceMultiplexMatchesPlainRunVerbatim) {
  // One instance through the full router/envelope machinery: the scheduler
  // is payload-blind and the send sequence is unchanged, so outputs, traces
  // and timing must be bit-identical to the plain path — only wire bytes
  // (envelope framing) and per-instance attribution may differ.
  const RunConfig cfg = scalar_cfg(5, 1, 0.0, 1.0, 4);
  const RunReport plain = run(cfg);

  SessionOptions opts;
  opts.force_multiplex = true;
  Session s(opts);
  s.add(cfg);
  const SessionReport rep = s.run();
  ASSERT_TRUE(rep.scalar_reports[0].has_value());
  const RunReport& r = *rep.scalar_reports[0];
  EXPECT_EQ(r.outputs, plain.outputs);
  EXPECT_EQ(r.validity_ok, plain.validity_ok);
  EXPECT_EQ(r.agreement_ok, plain.agreement_ok);
  EXPECT_EQ(r.worst_pair_gap, plain.worst_pair_gap);
  EXPECT_EQ(r.spread_by_round, plain.spread_by_round);
  EXPECT_EQ(r.finish_time, plain.finish_time);
  EXPECT_EQ(r.metrics.messages_sent, plain.metrics.messages_sent);
  // Envelope framing costs wire bytes but no extra packets or messages.
  EXPECT_GT(r.metrics.payload_bytes, plain.metrics.payload_bytes);
  // All traffic was attributed to instance 0.
  ASSERT_EQ(r.metrics.sent_by_instance.size(), 1u);
  EXPECT_EQ(r.metrics.sent_by_instance[0], r.metrics.messages_sent);
}

TEST(Session, RepeatRunsBitIdentical) {
  // A heterogeneous batched multiplexed session replayed from scratch must
  // reproduce every per-instance report bitwise (simulator determinism
  // survives the router + batching layers).
  auto run_once = [] {
    SessionOptions opts;
    opts.batching = 8;
    Session s(opts);
    for (std::uint32_t i = 0; i < 6; ++i) {
      RunConfig cfg = scalar_cfg(5, 1, 0.1 * i, 1.0 + 0.3 * i, 3 + (i % 3));
      s.add(cfg);
    }
    return s.run();
  };
  const SessionReport a = run_once();
  const SessionReport b = run_once();
  EXPECT_EQ(a.finish_times, b.finish_times);
  EXPECT_EQ(a.metrics.messages_sent, b.metrics.messages_sent);
  EXPECT_EQ(a.metrics.packets_sent, b.metrics.packets_sent);
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(a.scalar_reports[i].has_value());
    ASSERT_TRUE(b.scalar_reports[i].has_value());
    expect_scalar_equal(*a.scalar_reports[i], *b.scalar_reports[i]);
  }
}

TEST(Session, InstanceOrderPermutationInvariant) {
  // Registration order must not leak into per-instance verdicts.  Under the
  // FIFO scheduler every message of virtual round k arrives at time k and
  // the within-instance arrival order is sender-id order regardless of which
  // router slot the instance occupies, so each instance's report is a
  // function of its config alone — bit-identical across permutations.
  std::vector<RunConfig> cfgs;
  for (std::uint32_t i = 0; i < 4; ++i) {
    RunConfig cfg = scalar_cfg(5, 1, 0.2 * i, 2.0 + 0.5 * i, 4);
    cfg.sched = SchedKind::kFifo;
    cfgs.push_back(cfg);
  }
  SessionOptions opts;
  opts.force_multiplex = true;
  const SessionReport base = run_session(cfgs, opts);

  const std::vector<std::size_t> perm{2, 0, 3, 1};
  std::vector<RunConfig> shuffled;
  for (std::size_t i : perm) shuffled.push_back(cfgs[i]);
  const SessionReport permuted = run_session(shuffled, opts);

  for (std::size_t slot = 0; slot < perm.size(); ++slot) {
    ASSERT_TRUE(base.scalar_reports[perm[slot]].has_value());
    ASSERT_TRUE(permuted.scalar_reports[slot].has_value());
    const RunReport& want = *base.scalar_reports[perm[slot]];
    const RunReport& got = *permuted.scalar_reports[slot];
    EXPECT_EQ(got.outputs, want.outputs);
    EXPECT_EQ(got.spread_by_round, want.spread_by_round);
    EXPECT_EQ(got.finish_time, want.finish_time);
    EXPECT_EQ(got.validity_ok, want.validity_ok);
    EXPECT_EQ(got.agreement_ok, want.agreement_ok);
  }
}

TEST(Session, BatchingPreservesLogicalCountsAndPacksAtScale) {
  // 64 concurrent instances on one 4-party network: the batched session must
  // report the SAME logical message count as the unbatched one while packing
  // at least 2 logical messages per packet (the CI bench gate's invariant).
  auto run_at = [](std::uint32_t batching) {
    SessionOptions opts;
    opts.batching = batching;
    Session s(opts);
    for (std::uint32_t i = 0; i < 64; ++i) {
      RunConfig cfg = scalar_cfg(4, 1, 0.0, 1.0 + 0.01 * i, 0);
      s.add(cfg);
    }
    return s.run();
  };
  const SessionReport plain = run_at(0);
  const SessionReport batched = run_at(8);

  EXPECT_EQ(plain.metrics.messages_sent, batched.metrics.messages_sent);
  EXPECT_EQ(plain.metrics.packets_sent, plain.metrics.messages_sent);
  EXPECT_LT(batched.metrics.packets_sent, plain.metrics.packets_sent);
  EXPECT_GE(batched.msgs_per_packet, 2.0);

  // Per-instance attribution is batching-invariant and accounts for every
  // logical message (all session traffic is enveloped).
  ASSERT_EQ(batched.metrics.sent_by_instance.size(), 64u);
  EXPECT_EQ(plain.metrics.sent_by_instance, batched.metrics.sent_by_instance);
  const std::uint64_t attributed =
      std::accumulate(batched.metrics.sent_by_instance.begin(),
                      batched.metrics.sent_by_instance.end(), std::uint64_t{0});
  EXPECT_EQ(attributed, batched.metrics.messages_sent);

  // Verdicts are batching-invariant too (delivery order shifts, correctness
  // must not).
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(batched.scalar_reports[i].has_value());
    EXPECT_TRUE(batched.scalar_reports[i]->validity_ok);
    EXPECT_TRUE(batched.scalar_reports[i]->agreement_ok);
    EXPECT_TRUE(batched.scalar_reports[i]->all_output);
  }
}

TEST(Session, MixedScalarAndVectorInstances) {
  SessionOptions opts;
  opts.batching = 4;
  Session s(opts);
  s.add(scalar_cfg(5, 1, 0.0, 1.0, 0));
  s.add(vector_cfg(5, 1, 0));
  s.add(scalar_cfg(5, 1, -1.0, 1.0, 0));
  const SessionReport rep = s.run();
  EXPECT_TRUE(rep.all_output);
  ASSERT_TRUE(rep.scalar_reports[0].has_value());
  ASSERT_TRUE(rep.vector_reports[1].has_value());
  ASSERT_TRUE(rep.scalar_reports[2].has_value());
  EXPECT_TRUE(rep.scalar_reports[0]->validity_ok);
  EXPECT_TRUE(rep.scalar_reports[0]->agreement_ok);
  EXPECT_TRUE(rep.vector_reports[1]->box_validity_ok);
  EXPECT_TRUE(rep.vector_reports[1]->agreement_ok);
  EXPECT_TRUE(rep.scalar_reports[2]->validity_ok);
  EXPECT_TRUE(rep.scalar_reports[2]->agreement_ok);
  for (double ft : rep.finish_times) EXPECT_GT(ft, 0.0);
}

TEST(Session, CrashBudgetCountsLogicalSendsAcrossInstances) {
  // A session-level crash budget of 5 logical sends: party 0 completes its
  // instance-0 round-0 multicast (4 frames) and one frame of instance 1,
  // then crashes — every instance must still converge on the surviving
  // quorum, and the victim's logical send count must be exactly the budget.
  SessionOptions opts;
  opts.batching = 8;
  opts.crashes.push_back({0, 5, {}});
  Session s(opts);
  for (std::uint32_t i = 0; i < 4; ++i) s.add(scalar_cfg(5, 1, 0.0, 1.0, 0));
  const SessionReport rep = s.run();
  EXPECT_EQ(rep.metrics.sent_by[0], 5u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(rep.scalar_reports[i].has_value());
    const RunReport& r = *rep.scalar_reports[i];
    EXPECT_TRUE(r.all_output);
    EXPECT_EQ(r.outputs.size(), 4u);  // the 4 surviving parties
    EXPECT_TRUE(r.validity_ok);
    EXPECT_TRUE(r.agreement_ok);
  }
}

TEST(Session, ThreadAndSocketBackendsReachSameVerdicts) {
  // Sim/thread/socket parity at the session level: same instances, batched
  // transport (sharded threads or loopback UDP), same per-instance verdicts
  // (outputs differ by interleaving; correctness must not).  The socket row
  // repeats under injected datagram loss, which the perfect link must
  // absorb WITHOUT inflating logical message counts — retransmits are
  // physical, msgs are loss-invariant.  Rounds are the PROVABLE count
  // (rounds = 0 -> rounds_for_bound): retransmission delays give the socket
  // rows genuinely adversarial schedules, so verdicts may only be compared
  // where the theory guarantees them on every schedule.
  auto build = [](BackendKind backend, double loss) {
    std::vector<RunConfig> cfgs;
    for (std::uint32_t i = 0; i < 3; ++i) {
      RunConfig cfg = scalar_cfg(5, 1, 0.1 * i, 1.0 + 0.2 * i, 0);
      cfg.backend = backend;
      cfg.socket_faults.loss = loss;
      cfg.socket_faults.seed = 7;
      cfgs.push_back(cfg);
    }
    return cfgs;
  };
  SessionOptions opts;
  opts.batching = 8;
  opts.shards = 2;
  const SessionReport sim = run_session(build(BackendKind::kSim, 0.0), opts);
  EXPECT_TRUE(sim.all_output);
  struct Row {
    BackendKind backend;
    double loss;
    const char* name;
  };
  for (const Row row : {Row{BackendKind::kThread, 0.0, "thread"},
                        Row{BackendKind::kSocket, 0.0, "socket"},
                        Row{BackendKind::kSocket, 0.10, "socket_lossy"}}) {
    SCOPED_TRACE(row.name);
    const SessionReport rep = run_session(build(row.backend, row.loss), opts);
    EXPECT_TRUE(rep.all_output);
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(sim.scalar_reports[i].has_value());
      ASSERT_TRUE(rep.scalar_reports[i].has_value());
      EXPECT_EQ(rep.scalar_reports[i]->outputs.size(),
                sim.scalar_reports[i]->outputs.size());
      EXPECT_EQ(rep.scalar_reports[i]->validity_ok,
                sim.scalar_reports[i]->validity_ok);
      EXPECT_EQ(rep.scalar_reports[i]->agreement_ok,
                sim.scalar_reports[i]->agreement_ok);
      EXPECT_EQ(rep.metrics.messages_sent, sim.metrics.messages_sent);
    }
  }
}

TEST(Session, ValidatesMultiplexingConstraints) {
  // Mismatched seeds cannot share one simulator.
  {
    Session s;
    s.add(scalar_cfg(5, 1, 0.0, 1.0, 2));
    RunConfig other = scalar_cfg(5, 1, 0.0, 2.0, 2);
    other.seed = 7;
    s.add(other);
    EXPECT_THROW(s.run(), std::invalid_argument);
  }
  // Per-instance crash plans are not multiplexable.
  {
    Session s;
    RunConfig cfg = scalar_cfg(5, 1, 0.0, 1.0, 2);
    cfg.crashes.push_back({0, 2, {}});
    s.add(cfg);
    s.add(scalar_cfg(5, 1, 0.0, 1.0, 2));
    EXPECT_THROW(s.run(), std::invalid_argument);
  }
  // kLive instances have no output to wait on.
  {
    Session s;
    RunConfig cfg = scalar_cfg(5, 1, 0.0, 1.0, 2);
    cfg.mode = core::TerminationMode::kLive;
    s.add(cfg);
    s.add(scalar_cfg(5, 1, 0.0, 1.0, 2));
    EXPECT_THROW(s.run(), std::invalid_argument);
  }
  // Session faults respect the budget t.
  {
    SessionOptions opts;
    opts.crashes.push_back({0, 1, {}});
    opts.crashes.push_back({1, 1, {}});
    Session s(opts);
    s.add(scalar_cfg(5, 1, 0.0, 1.0, 2));
    s.add(scalar_cfg(5, 1, 0.0, 1.0, 2));
    EXPECT_THROW(s.run(), std::invalid_argument);
  }
  // run() is one-shot and needs at least one instance.
  {
    Session s;
    EXPECT_THROW(s.run(), std::invalid_argument);
  }
  {
    Session s;
    s.add(scalar_cfg(5, 1, 0.0, 1.0, 2));
    (void)s.run();
    EXPECT_THROW(s.run(), std::invalid_argument);
    EXPECT_THROW(s.add(scalar_cfg(5, 1, 0.0, 1.0, 2)), std::invalid_argument);
  }
}

}  // namespace
}  // namespace apxa::harness
