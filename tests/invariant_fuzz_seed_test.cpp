// Randomized seed-sweep property test: hundreds of executions across every
// protocol kind and every scheduler, each judged by the shared invariant
// oracle (invariant_oracle.hpp) — the plain-ctest face of the fuzzing
// subsystem, so builds without any fuzzer toolchain still sweep a broad
// random slice of the scenario space on every run.
//
// Per (protocol, scheduler) cell the sweep draws `kSeedsPerCell` seeds; each
// seed derives the inputs, the crash plan (send budgets and multicast
// orders) or the byzantine strategy, deterministically via the repo Rng, so
// any failure reproduces from its gtest name alone.  Round budgets come from
// the reconstructed theory (core/bounds.hpp) plus margin, making
// eps-agreement a hard expectation everywhere a budget formula exists.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/byzantine.hpp"
#include "adversary/crash_plan.hpp"
#include "common/rng.hpp"
#include "core/async_byz.hpp"
#include "core/bounds.hpp"
#include "harness/harness.hpp"
#include "invariant_oracle.hpp"

namespace apxa {
namespace {

using harness::ProtocolKind;
using harness::SchedKind;

constexpr SchedKind kScheds[] = {SchedKind::kRandom, SchedKind::kFifo,
                                 SchedKind::kGreedySplit, SchedKind::kTargeted,
                                 SchedKind::kClique};
constexpr std::uint64_t kSeedsPerCell = 8;
constexpr double kEpsilon = 1e-2;

// 7 protocol kinds x 5 schedulers x 8 seeds = 280 oracle-checked runs.

adversary::ByzSpec byz_for_seed(Rng& rng, ProcessId who, double lo, double hi) {
  constexpr adversary::ByzKind kKinds[] = {
      adversary::ByzKind::kSilent,      adversary::ByzKind::kExtremeLow,
      adversary::ByzKind::kExtremeHigh, adversary::ByzKind::kEquivocate,
      adversary::ByzKind::kSpoiler,     adversary::ByzKind::kNoise,
      adversary::ByzKind::kHullEscape};
  adversary::ByzSpec b;
  b.who = who;
  b.kind = kKinds[rng.next_int(0, 6)];
  b.lo = lo - rng.next_double(0.0, 50.0);
  b.hi = hi + rng.next_double(0.0, 50.0);
  b.amplify = rng.next_double(1.0, 6.0);
  b.seed = rng.next_int(1, 1 << 20);
  return b;
}

class ScalarSweep
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, SchedKind>> {};

TEST_P(ScalarSweep, OracleHoldsAcrossSeeds) {
  const auto [protocol, sched] = GetParam();
  for (std::uint64_t seed = 1; seed <= kSeedsPerCell; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 7919 + static_cast<std::uint64_t>(protocol) * 131 +
            static_cast<std::uint64_t>(sched));

    harness::RunConfig cfg;
    cfg.protocol = protocol;
    cfg.sched = sched;
    cfg.seed = seed;
    cfg.epsilon = kEpsilon;
    switch (protocol) {
      case ProtocolKind::kCrashRound:
        cfg.params = {5, 2};
        break;
      case ProtocolKind::kByzRound:
        cfg.params = {6 + static_cast<std::uint32_t>(seed % 2), 1};
        break;
      default:  // kWitness
        cfg.params = {4 + static_cast<std::uint32_t>(seed % 2), 1};
        break;
    }
    cfg.inputs = harness::random_inputs(rng, cfg.params.n, -50.0, 50.0);
    const auto [lo_it, hi_it] =
        std::minmax_element(cfg.inputs.begin(), cfg.inputs.end());
    const double spread = *hi_it - *lo_it;

    if (protocol == ProtocolKind::kCrashRound) {
      cfg.averager = seed % 2 ? core::Averager::kMean : core::Averager::kMidpoint;
      const auto count = static_cast<std::uint32_t>(rng.next_int(0, 2));
      cfg.crashes = adversary::random_crashes(rng, cfg.params, count, 3);
      const double k =
          core::predicted_factor(cfg.averager, cfg.params.n, cfg.params.t);
      cfg.fixed_rounds = core::rounds_needed(spread, kEpsilon, k) + 2;
    } else if (protocol == ProtocolKind::kByzRound) {
      if (seed % 3 != 0) {
        cfg.byz.push_back(byz_for_seed(
            rng, static_cast<ProcessId>(rng.next_int(0, cfg.params.n - 1)),
            *lo_it, *hi_it));
      }
      const double mag = std::max(std::abs(*lo_it), std::abs(*hi_it));
      cfg.fixed_rounds =
          core::rounds_for_bound(mag, kEpsilon, core::Averager::kDlpswAsync,
                                 cfg.params) +
          2;
    } else {
      if (seed % 3 != 0) {
        cfg.byz.push_back(byz_for_seed(
            rng, static_cast<ProcessId>(rng.next_int(0, cfg.params.n - 1)),
            *lo_it, *hi_it));
      }
      cfg.fixed_rounds = core::rounds_needed(spread, kEpsilon, 2.0) + 2;
    }

    const harness::RunReport rep = harness::run_async(cfg);
    const auto v = oracle::check_run(cfg, rep);
    EXPECT_TRUE(v.ok) << v.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ScalarSweep,
    ::testing::Combine(::testing::Values(ProtocolKind::kCrashRound,
                                         ProtocolKind::kByzRound,
                                         ProtocolKind::kWitness),
                       ::testing::ValuesIn(kScheds)));

class VectorSweep
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, SchedKind>> {};

TEST_P(VectorSweep, OracleHoldsAcrossSeeds) {
  const auto [protocol, sched] = GetParam();
  const bool convex = protocol == ProtocolKind::kVectorConvex ||
                      protocol == ProtocolKind::kVectorConvexRB;
  for (std::uint64_t seed = 1; seed <= kSeedsPerCell; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 6151 + static_cast<std::uint64_t>(protocol) * 131 +
            static_cast<std::uint64_t>(sched));

    harness::VectorRunConfig cfg;
    cfg.protocol = protocol;
    cfg.sched = sched;
    cfg.seed = seed;
    cfg.epsilon = kEpsilon;
    cfg.dim = 1 + static_cast<std::uint32_t>(seed % 3);
    switch (protocol) {
      case ProtocolKind::kVectorCrash:
        cfg.params = {5, 2};
        break;
      case ProtocolKind::kVectorByz:
        cfg.params = {6 + static_cast<std::uint32_t>(seed % 2), 1};
        break;
      default:  // convex kinds, n > 3t
        cfg.params = {4 + static_cast<std::uint32_t>(seed % 2), 1};
        break;
    }
    cfg.inputs =
        harness::random_vector_inputs(rng, cfg.params.n, cfg.dim, -50.0, 50.0);
    double lo = 1e9, hi = -1e9;
    for (const auto& row : cfg.inputs) {
      for (double x : row) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
    }

    oracle::Expect expect;
    if (protocol == ProtocolKind::kVectorCrash) {
      const auto count = static_cast<std::uint32_t>(rng.next_int(0, 2));
      cfg.crashes = adversary::random_crashes(rng, cfg.params, count, 3);
      const double k = core::predicted_factor(core::Averager::kMean,
                                              cfg.params.n, cfg.params.t);
      cfg.fixed_rounds = core::rounds_needed(hi - lo, kEpsilon, k) + 2;
    } else if (protocol == ProtocolKind::kVectorByz) {
      if (seed % 3 != 0) {
        cfg.byz.push_back(byz_for_seed(
            rng, static_cast<ProcessId>(rng.next_int(0, cfg.params.n - 1)),
            lo, hi));
      }
      cfg.fixed_rounds =
          core::rounds_for_bound(std::max(std::abs(lo), std::abs(hi)), kEpsilon,
                                 core::Averager::kDlpswAsync, cfg.params) +
          2;
    } else {
      // Safe-area protocols: no reconstructed budget formula — hold them to
      // liveness, convex validity and (for RB collect) view overlap.
      if (seed % 3 != 0) {
        cfg.byz.push_back(byz_for_seed(
            rng, static_cast<ProcessId>(rng.next_int(0, cfg.params.n - 1)),
            lo, hi));
      }
      cfg.fixed_rounds = 2 + static_cast<Round>(seed % 3);
      expect.require_agreement = false;
    }

    const harness::VectorRunReport rep = harness::run(cfg);
    const auto v = oracle::check_run(cfg, rep, expect);
    EXPECT_TRUE(v.ok) << v.summary();
    if (convex) {
      EXPECT_TRUE(rep.convex_validity_ok);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, VectorSweep,
    ::testing::Combine(::testing::Values(ProtocolKind::kVectorCrash,
                                         ProtocolKind::kVectorByz,
                                         ProtocolKind::kVectorConvex,
                                         ProtocolKind::kVectorConvexRB),
                       ::testing::ValuesIn(kScheds)));

}  // namespace
}  // namespace apxa
