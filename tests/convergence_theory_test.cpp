// Parameterized verification of the reconstructed theorems over wide (n, t)
// grids: the analytic worst-case machinery (which enumerates adversarial
// views exactly) must reproduce each predictor formula.  This is the
// strongest evidence the library offers that the reconstructed constants in
// core/bounds.* are the right ones.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/worst_case.hpp"
#include "core/bounds.hpp"

namespace apxa {
namespace {

using analysis::worst_one_round_factor;
using analysis::WorstCaseQuery;
using core::Averager;

struct NT {
  std::uint32_t n, t;
};

// --- Theorem 1 (headline): async crash mean rate is exactly (n - t)/t ------

class CrashMeanTheorem : public ::testing::TestWithParam<NT> {};

TEST_P(CrashMeanTheorem, AnalyticEqualsFormula) {
  const auto [n, t] = GetParam();
  WorstCaseQuery q;
  q.params = {n, t};
  q.averager = Averager::kMean;
  q.random_configs = 128;
  const double analytic = worst_one_round_factor(q).worst_factor;
  const double formula = core::predicted_factor_crash_async_mean(n, t);
  EXPECT_NEAR(analytic, formula, formula * 1e-9) << "n=" << n << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrashMeanTheorem,
    ::testing::Values(NT{3, 1}, NT{4, 1}, NT{5, 1}, NT{5, 2}, NT{7, 2}, NT{7, 3},
                      NT{9, 4}, NT{10, 3}, NT{13, 6}, NT{16, 5}, NT{20, 3},
                      NT{25, 12}, NT{31, 10}, NT{33, 16}, NT{40, 13}, NT{64, 21}));

// --- Theorem 2: halving rules are pinned at 2 ------------------------------

class MidpointTheorem : public ::testing::TestWithParam<NT> {};

TEST_P(MidpointTheorem, AnalyticIsTwo) {
  const auto [n, t] = GetParam();
  WorstCaseQuery q;
  q.params = {n, t};
  q.averager = Averager::kMidpoint;
  const double analytic = worst_one_round_factor(q).worst_factor;
  EXPECT_NEAR(analytic, 2.0, 1e-9) << "n=" << n << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Grid, MidpointTheorem,
                         ::testing::Values(NT{3, 1}, NT{8, 1}, NT{16, 1},
                                           NT{16, 5}, NT{32, 1}, NT{32, 10},
                                           NT{64, 21}));

// --- Theorem 3: DLPSW async byzantine rate = floor((n-3t-1)/2t) + 1 --------

class DlpswAsyncTheorem : public ::testing::TestWithParam<NT> {};

TEST_P(DlpswAsyncTheorem, AnalyticMatchesSelectCount) {
  const auto [n, t] = GetParam();
  WorstCaseQuery q;
  q.params = {n, t};
  q.averager = Averager::kDlpswAsync;
  q.byz_count = t;
  q.random_configs = 128;
  const double analytic = worst_one_round_factor(q).worst_factor;
  const double formula = core::predicted_factor_dlpsw_async(n, t);
  // The formula is the guaranteed floor; the exact optimum may not exceed it
  // by more than one select-stride rounding step.
  EXPECT_GE(analytic, formula - 1e-9) << "n=" << n << " t=" << t;
  EXPECT_LE(analytic, formula + 1.0 + 1e-9) << "n=" << n << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Grid, DlpswAsyncTheorem,
                         ::testing::Values(NT{6, 1}, NT{8, 1}, NT{11, 2},
                                           NT{16, 3}, NT{16, 1}, NT{21, 4},
                                           NT{26, 5}, NT{32, 6}, NT{41, 8}));

// --- Monotonicity / dominance properties -----------------------------------

TEST(TheoremShape, MeanDominatesEveryOtherRuleForCrash) {
  for (const NT p : {NT{8, 1}, NT{12, 3}, NT{16, 3}, NT{31, 10}}) {
    WorstCaseQuery q;
    q.params = {p.n, p.t};
    q.averager = Averager::kMean;
    const double mean_k = worst_one_round_factor(q).worst_factor;
    for (const Averager other :
         {Averager::kMidpoint, Averager::kMedian, Averager::kReduceMidpoint}) {
      q.averager = other;
      EXPECT_GE(mean_k + 1e-9, worst_one_round_factor(q).worst_factor)
          << core::averager_name(other) << " beat mean at n=" << p.n;
    }
  }
}

TEST(TheoremShape, CrashRateStrictlyIncreasesInN) {
  double prev = 0.0;
  for (std::uint32_t n = 5; n <= 45; n += 8) {
    WorstCaseQuery q;
    q.params = {n, 2};
    q.averager = Averager::kMean;
    const double k = worst_one_round_factor(q).worst_factor;
    EXPECT_GT(k, prev);
    prev = k;
  }
}

TEST(TheoremShape, CrashRateDecreasesInT) {
  double prev = 1e300;
  for (std::uint32_t t = 1; t <= 7; ++t) {
    WorstCaseQuery q;
    q.params = {16, t};
    q.averager = Averager::kMean;
    const double k = worst_one_round_factor(q).worst_factor;
    EXPECT_LT(k, prev);
    prev = k;
  }
}

TEST(TheoremShape, RoundsBudgetInverseInLogK) {
  // Doubling the factor roughly halves the rounds needed, for large ratios.
  const double S = 1e9, eps = 1.0;
  const auto r2 = core::rounds_needed(S, eps, 2.0);
  const auto r4 = core::rounds_needed(S, eps, 4.0);
  const auto r16 = core::rounds_needed(S, eps, 16.0);
  EXPECT_NEAR(static_cast<double>(r2) / r4, 2.0, 0.15);
  EXPECT_NEAR(static_cast<double>(r4) / r16, 2.0, 0.15);
}

}  // namespace
}  // namespace apxa
