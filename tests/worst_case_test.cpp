// Exact one-round adversarial analysis: the empirical lower-bound harness.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/worst_case.hpp"
#include "core/bounds.hpp"

namespace apxa::analysis {
namespace {

using core::Averager;

WorstCaseQuery crash_query(std::uint32_t n, std::uint32_t t, Averager a) {
  WorstCaseQuery q;
  q.params = {n, t};
  q.averager = a;
  return q;
}

TEST(WorstCase, MeanMatchesTheory) {
  // The mean rule's exact worst-case factor is (n - t)/t: the theory the
  // whole library is built around.
  for (auto [n, t] : {std::pair{4u, 1u}, {7u, 2u}, {10u, 3u}, {16u, 5u}}) {
    const auto res = worst_one_round_factor(crash_query(n, t, Averager::kMean));
    const double predicted = core::predicted_factor_crash_async_mean(n, t);
    EXPECT_NEAR(res.worst_factor, predicted, predicted * 0.02)
        << "n=" << n << " t=" << t;
  }
}

TEST(WorstCase, MidpointStuckAtTwo) {
  // Halving rules cannot exploit n >> t: factor stays ~2 (Fekete's contrast).
  for (std::uint32_t n : {8u, 16u, 32u}) {
    const auto res = worst_one_round_factor(crash_query(n, 1, Averager::kMidpoint));
    EXPECT_LE(res.worst_factor, 2.0 + 1e-9) << "n=" << n;
    EXPECT_GE(res.worst_factor, 2.0 - 1e-9) << "n=" << n;
  }
}

TEST(WorstCase, MeanBeatsMidpointWhenNLarge) {
  const auto mean_res = worst_one_round_factor(crash_query(31, 1, Averager::kMean));
  const auto mid_res = worst_one_round_factor(crash_query(31, 1, Averager::kMidpoint));
  EXPECT_GT(mean_res.worst_factor, 10.0 * mid_res.worst_factor);
}

TEST(WorstCase, MedianCanStall) {
  // The median rule has unbounded-view worst cases where the spread does not
  // shrink at all (factor ~1): a bad averaging rule, caught analytically.
  const auto res = worst_one_round_factor(crash_query(10, 3, Averager::kMedian));
  EXPECT_LT(res.worst_factor, 1.5);
}

TEST(WorstCase, ByzantineLaunderedRules) {
  // With t fabricated values per view, the DLPSW async rule still converges
  // (factor > 1); the plain mean does not (fabrications land in the view).
  WorstCaseQuery q = crash_query(11, 2, Averager::kDlpswAsync);
  q.byz_count = 2;
  const auto laundered = worst_one_round_factor(q);
  EXPECT_GT(laundered.worst_factor, 1.0);

  WorstCaseQuery q_mean = crash_query(11, 2, Averager::kMean);
  q_mean.byz_count = 2;
  const auto naked = worst_one_round_factor(q_mean);
  // Fabricated extremes blow the mean out of the genuine hull: the "factor"
  // collapses below 1 (spread can even expand).
  EXPECT_LT(naked.worst_factor, 1.0);
}

TEST(WorstCase, SplitsAreTheWorstFamilyForMean) {
  const auto res = worst_one_round_factor(crash_query(10, 3, Averager::kMean));
  EXPECT_NEAR(res.worst_factor, res.factor_at_worst_split,
              res.worst_factor * 0.05);
}

TEST(WorstCase, PostSpreadMonotoneInT) {
  // More faults = more adversarial power = larger post-round spread.
  std::vector<double> inputs;
  for (int i = 0; i < 12; ++i) inputs.push_back(i / 11.0);
  double prev = 0.0;
  for (std::uint32_t t = 1; t <= 5; ++t) {
    WorstCaseQuery q = crash_query(12, t, Averager::kMean);
    const double post = adversarial_post_spread(q, inputs);
    EXPECT_GE(post, prev);
    prev = post;
  }
}

TEST(WorstCase, ValidatesArguments) {
  WorstCaseQuery q = crash_query(4, 1, Averager::kMean);
  q.byz_count = 3;  // an all-fabricated view is meaningless
  EXPECT_THROW(adversarial_post_spread(q, {0.0, 1.0, 0.5, 0.5}),
               std::invalid_argument);
}

TEST(WorstCase, ExcessFaultsBreakLaundering) {
  // With byz_count = t the DLPSW rule converges; with byz_count = t + 1 the
  // fabricated extremes leak through reduce_t and the factor collapses.
  WorstCaseQuery ok = crash_query(16, 2, Averager::kDlpswAsync);
  ok.byz_count = 2;
  WorstCaseQuery broken = ok;
  broken.byz_count = 3;
  EXPECT_GT(worst_one_round_factor(ok).worst_factor, 1.0);
  EXPECT_LT(worst_one_round_factor(broken).worst_factor,
            worst_one_round_factor(ok).worst_factor);
}

TEST(WorstCase, WorstConfigReported) {
  const auto res = worst_one_round_factor(crash_query(6, 1, Averager::kMean));
  EXPECT_FALSE(res.worst_config.empty());
  // Re-evaluating the reported config reproduces the reported factor.
  WorstCaseQuery q = crash_query(6, 1, Averager::kMean);
  auto cfg = res.worst_config;
  std::vector<double> sorted = cfg;
  std::sort(sorted.begin(), sorted.end());
  const double s = sorted.back() - sorted.front();
  const double post = adversarial_post_spread(q, cfg);
  EXPECT_NEAR(s / post, res.worst_factor, 1e-9);
}

}  // namespace
}  // namespace apxa::analysis
