// Synchronous AA wrappers: end-to-end eps-agreement with budgeted rounds.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/sync_aa.hpp"

namespace apxa::core {
namespace {

TEST(SyncAa, DlpswByzantineEndToEnd) {
  const SystemParams p{7, 2};
  std::vector<double> inputs{0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 0.5};
  adversary::ByzSpec b1;
  b1.who = 0;
  b1.kind = adversary::ByzKind::kSpoiler;
  adversary::ByzSpec b2;
  b2.who = 6;
  b2.kind = adversary::ByzKind::kEquivocate;
  b2.lo = -1e3;
  b2.hi = 1e3;
  const auto rep = run_dlpsw_sync(p, inputs, 1e-4, {b1, b2});
  EXPECT_TRUE(rep.validity_ok);
  EXPECT_TRUE(rep.agreement_ok) << rep.worst_pair_gap;
}

TEST(SyncAa, DlpswRejectsBadResilience) {
  EXPECT_THROW(run_dlpsw_sync({6, 2}, std::vector<double>(6, 0.0), 1e-3, {}),
               std::invalid_argument);
}

TEST(SyncAa, CrashSyncEndToEnd) {
  const SystemParams p{9, 3};
  std::vector<double> inputs;
  Rng rng(3);
  for (int i = 0; i < 9; ++i) inputs.push_back(rng.next_double(-4.0, 4.0));
  std::vector<SyncCrash> crashes{
      SyncCrash{1, 0, {0, 2}}, SyncCrash{4, 1, {}}, SyncCrash{7, 2, {8}}};
  const auto rep = run_crash_sync(p, inputs, 1e-5, crashes);
  EXPECT_TRUE(rep.validity_ok);
  EXPECT_TRUE(rep.agreement_ok) << rep.worst_pair_gap;
}

TEST(SyncAa, CrashSyncFaultFreeOneShot) {
  // Fault-free synchronous mean agreement is exact after one round, so any
  // eps is met.
  const SystemParams p{5, 1};
  const auto rep =
      run_crash_sync(p, {1.0, 2.0, 3.0, 4.0, 5.0}, 1e-9, {});
  EXPECT_TRUE(rep.agreement_ok);
  EXPECT_EQ(rep.worst_pair_gap, 0.0);
}

TEST(SyncAa, RoundBudgetGrowsWithPrecision) {
  const SystemParams p{7, 2};
  std::vector<double> inputs{0, 1, 2, 3, 4, 5, 6};
  const auto coarse = run_dlpsw_sync(p, inputs, 1.0, {});
  const auto fine = run_dlpsw_sync(p, inputs, 1e-6, {});
  EXPECT_GT(fine.rounds_run, coarse.rounds_run);
}

}  // namespace
}  // namespace apxa::core
