// RoundCollector semantics: quorum freezing, buffering, duplicates.
#include <gtest/gtest.h>

#include "core/round_engine.hpp"

namespace apxa::core {
namespace {

TEST(RoundCollector, FreezesAtQuorum) {
  RoundCollector c(SystemParams{5, 1});  // quorum 4
  c.add_own(0, 10.0);
  EXPECT_FALSE(c.ready(0));
  c.add_remote(1, 0, 11.0);
  c.add_remote(2, 0, 12.0);
  EXPECT_FALSE(c.ready(0));
  c.add_remote(3, 0, 13.0);
  EXPECT_TRUE(c.ready(0));
  EXPECT_EQ(c.view(0).size(), 4u);
}

TEST(RoundCollector, LateArrivalsIgnoredAfterFreeze) {
  RoundCollector c(SystemParams{4, 1});  // quorum 3
  c.add_own(0, 1.0);
  c.add_remote(1, 0, 2.0);
  c.add_remote(2, 0, 3.0);
  ASSERT_TRUE(c.ready(0));
  c.add_remote(3, 0, 99.0);  // too late
  EXPECT_EQ(c.view(0), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(RoundCollector, DuplicateSenderDropped) {
  RoundCollector c(SystemParams{4, 1});
  c.add_own(0, 1.0);
  c.add_remote(1, 0, 2.0);
  c.add_remote(1, 0, 50.0);  // byzantine duplicate: first value kept
  EXPECT_FALSE(c.ready(0));
  c.add_remote(2, 0, 3.0);
  ASSERT_TRUE(c.ready(0));
  EXPECT_EQ(c.view(0), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(RoundCollector, OwnValueAlwaysInView) {
  // Remote values race ahead of add_own; the view must still contain the
  // party's own value.
  RoundCollector c(SystemParams{4, 1});  // quorum 3
  c.add_remote(1, 0, 2.0);
  c.add_remote(2, 0, 3.0);
  c.add_remote(3, 0, 4.0);  // would exceed the room reserved for own value
  EXPECT_FALSE(c.ready(0));
  c.add_own(0, 1.0);
  ASSERT_TRUE(c.ready(0));
  const auto& v = c.view(0);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_NE(std::find(v.begin(), v.end(), 1.0), v.end());
}

TEST(RoundCollector, FutureRoundsBuffered) {
  RoundCollector c(SystemParams{4, 1});
  c.add_remote(1, 5, 7.0);
  c.add_remote(2, 5, 8.0);
  EXPECT_FALSE(c.ready(5));
  c.add_own(5, 6.0);
  EXPECT_TRUE(c.ready(5));
}

TEST(RoundCollector, IndependentRounds) {
  RoundCollector c(SystemParams{4, 1});
  c.add_own(0, 1.0);
  c.add_own(1, 10.0);
  c.add_remote(1, 0, 2.0);
  c.add_remote(1, 1, 20.0);
  c.add_remote(2, 1, 30.0);
  EXPECT_FALSE(c.ready(0));
  EXPECT_TRUE(c.ready(1));
}

TEST(RoundCollector, ForgetBeforeDropsState) {
  RoundCollector c(SystemParams{4, 1});
  c.add_own(0, 1.0);
  c.add_remote(1, 0, 2.0);
  c.add_remote(2, 0, 3.0);
  ASSERT_TRUE(c.ready(0));
  c.forget_before(1);
  EXPECT_FALSE(c.ready(0));
  EXPECT_THROW(static_cast<void>(c.view(0)), std::invalid_argument);
}

TEST(RoundCollector, DoubleOwnThrows) {
  RoundCollector c(SystemParams{4, 1});
  c.add_own(0, 1.0);
  EXPECT_THROW(c.add_own(0, 2.0), std::invalid_argument);
}

TEST(RoundCollector, SenderOutOfRangeThrows) {
  RoundCollector c(SystemParams{4, 1});
  EXPECT_THROW(c.add_remote(9, 0, 1.0), std::invalid_argument);
}

TEST(RoundCollector, MinimalSystem) {
  // n=3, t=1: quorum 2 — own plus one remote.
  RoundCollector c(SystemParams{3, 1});
  c.add_own(0, 5.0);
  EXPECT_FALSE(c.ready(0));
  c.add_remote(2, 0, 6.0);
  EXPECT_TRUE(c.ready(0));
}

}  // namespace
}  // namespace apxa::core
