// Scheduler strategies: delay legality, determinism, and the value-ordering
// behavior of the greedy split-brain adversary.
#include <gtest/gtest.h>

#include "core/codec.hpp"
#include "sched/clique_scheduler.hpp"
#include "sched/crash_timing_scheduler.hpp"
#include "sched/fifo_scheduler.hpp"
#include "sched/greedy_split_scheduler.hpp"
#include "sched/random_scheduler.hpp"

namespace apxa::sched {
namespace {

net::Message round_msg(ProcessId from, ProcessId to, Round r, double value) {
  net::Message m;
  m.from = from;
  m.to = to;
  m.payload = core::encode_round(core::RoundMsg{r, value, 0});
  return m;
}

TEST(ClampDelay, KeepsDelaysLegal) {
  EXPECT_EQ(clamp_delay(5.0), 1.0);
  EXPECT_EQ(clamp_delay(-1.0), 1e-9);
  EXPECT_EQ(clamp_delay(0.25), 0.25);
}

TEST(RandomScheduler, DelaysInUnitInterval) {
  RandomScheduler s(3);
  const auto m = round_msg(0, 1, 0, 0.5);
  for (int i = 0; i < 1000; ++i) {
    const double d = s.delay(m);
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(RandomScheduler, SeedDeterminism) {
  RandomScheduler a(9), b(9);
  const auto m = round_msg(0, 1, 0, 0.5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.delay(m), b.delay(m));
}

TEST(FifoScheduler, ConstantDelay) {
  FifoScheduler s(0.5);
  const auto m1 = round_msg(0, 1, 0, 0.5);
  const auto m2 = round_msg(2, 3, 7, 99.0);
  EXPECT_EQ(s.delay(m1), 0.5);
  EXPECT_EQ(s.delay(m2), 0.5);
}

TEST(GreedySplit, LowCampReceivesLowValuesFirst) {
  GreedySplitScheduler s(core::round_probe(), 8);
  // Warm the range estimate.
  (void)s.delay(round_msg(0, 1, 0, 0.0));
  (void)s.delay(round_msg(1, 2, 0, 1.0));

  // Receiver 1 is in the LOW camp (ids < 4): low values get smaller delays.
  const double d_low_val = s.delay(round_msg(2, 1, 0, 0.0));
  const double d_high_val = s.delay(round_msg(3, 1, 0, 1.0));
  EXPECT_LT(d_low_val, d_high_val);

  // Receiver 6 is in the HIGH camp: mirrored.
  const double d_low_val_hi = s.delay(round_msg(2, 6, 0, 0.0));
  const double d_high_val_hi = s.delay(round_msg(3, 6, 0, 1.0));
  EXPECT_GT(d_low_val_hi, d_high_val_hi);
}

TEST(GreedySplit, NonValueTrafficNeutral) {
  GreedySplitScheduler s(core::round_probe(), 8);
  net::Message m;
  m.from = 0;
  m.to = 1;
  m.payload = core::encode_done(core::DoneMsg{1, 2.0});
  EXPECT_EQ(s.delay(m), 0.5);
}

TEST(GreedySplit, DelaysAlwaysLegal) {
  GreedySplitScheduler s(core::round_probe(), 6);
  for (double v : {-100.0, 0.0, 3.0, 1e9}) {
    for (ProcessId to = 0; to < 6; ++to) {
      const double d = s.delay(round_msg(5, to, 1, v));
      EXPECT_GT(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

TEST(TargetedDelay, LinkBiasOverridesSenderBias) {
  TargetedDelayScheduler s(4);
  s.bias_sender(0, 0.9);
  s.bias_link(0, 2, 0.1);
  EXPECT_EQ(s.delay(round_msg(0, 1, 0, 0.0)), 0.9);
  EXPECT_EQ(s.delay(round_msg(0, 2, 0, 0.0)), 0.1);
}

TEST(TargetedDelay, UnbiasedIsRandomButLegal) {
  TargetedDelayScheduler s(4);
  for (int i = 0; i < 100; ++i) {
    const double d = s.delay(round_msg(3, 1, 0, 0.0));
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(CliqueScheduler, BoundaryTrafficSlow) {
  CliqueScheduler s({0, 1, 2}, 0.05, 0.999);
  EXPECT_EQ(s.delay(round_msg(0, 1, 0, 0.0)), 0.05);   // inside clique
  EXPECT_EQ(s.delay(round_msg(4, 5, 0, 0.0)), 0.05);   // among outsiders
  EXPECT_EQ(s.delay(round_msg(0, 4, 0, 0.0)), 0.999);  // crossing out
  EXPECT_EQ(s.delay(round_msg(4, 0, 0, 0.0)), 0.999);  // crossing in
}

TEST(CliqueScheduler, RejectsInvertedDelays) {
  EXPECT_THROW(CliqueScheduler({0}, 0.9, 0.1), std::invalid_argument);
}

TEST(CliqueScheduler, DelaysStillWithinDelta) {
  CliqueScheduler s({0, 1}, 0.5, 1.5);  // 1.5 clamps to 1.0
  EXPECT_LE(s.delay(round_msg(0, 3, 0, 0.0)), 1.0);
}

}  // namespace
}  // namespace apxa::sched
