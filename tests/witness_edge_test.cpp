// Witness-protocol edge cases: malformed/undersized reports, laggards fed by
// buffered future-iteration traffic, RB hub state growth, determinism, and
// the protocol running on real threads.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "core/bounds.hpp"
#include "core/codec.hpp"
#include "core/epsilon_driver.hpp"
#include "net/sim.hpp"
#include "runtime/thread_net.hpp"
#include "sched/clique_scheduler.hpp"
#include "sched/random_scheduler.hpp"
#include "witness/aad04.hpp"

namespace apxa {
namespace {

using namespace core;

/// Byzantine party that sends well-formed but malicious REPORT messages:
/// undersized sets (must be rejected) and sets claiming undelivered origins
/// (must never be accepted).
class ReportForger final : public net::Process {
 public:
  void on_start(net::Context& ctx) override {
    const auto n = ctx.params().n;
    // Undersized report: fewer than n - t origins listed.
    ReportMsg small;
    small.iter = 0;
    small.have.assign(n, false);
    small.have[0] = true;
    // Overclaiming report: everything delivered (before anything happened).
    ReportMsg big;
    big.iter = 0;
    big.have.assign(n, true);
    // Wrong-size report.
    ReportMsg bad;
    bad.iter = 0;
    bad.have.assign(n + 3, true);
    for (ProcessId to = 0; to < n; ++to) {
      if (to == ctx.self()) continue;
      ctx.send(to, encode_report(small));
      ctx.send(to, encode_report(big));
      ctx.send(to, encode_report(bad));
    }
  }
  void on_message(net::Context&, ProcessId, BytesView) override {}
};

TEST(WitnessEdge, ForgedReportsHarmless) {
  const SystemParams p{7, 2};
  net::SimNetwork net(p, std::make_unique<sched::RandomScheduler>(5));
  for (ProcessId i = 0; i < 6; ++i) {
    witness::WitnessConfig wc;
    wc.params = p;
    wc.input = static_cast<double>(i) / 5.0;
    wc.iterations = 6;
    net.add_process(std::make_unique<witness::WitnessAaProcess>(wc));
  }
  net.add_process(std::make_unique<ReportForger>());
  net.mark_byzantine(6);
  net.start();
  net.run_until([&net] { return net.all_correct_output(); });
  EXPECT_TRUE(net.all_correct_output());
  for (double y : net.correct_outputs()) {
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
}

TEST(WitnessEdge, LaggardCatchesUpUnderCliqueScheduling) {
  // The clique scheduler makes the last t parties permanent stragglers; the
  // buffered-iteration machinery must still carry them to the output.
  RunConfig cfg;
  cfg.params = {7, 2};
  cfg.protocol = ProtocolKind::kWitness;
  cfg.epsilon = 1e-2;
  cfg.inputs = linear_inputs(7, 0.0, 1.0);
  cfg.fixed_rounds = 8;
  cfg.sched = SchedKind::kClique;
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  EXPECT_TRUE(rep.validity_ok);
  EXPECT_TRUE(rep.agreement_ok) << rep.worst_pair_gap;
}

TEST(WitnessEdge, DeterministicReplay) {
  auto run_once = [] {
    RunConfig cfg;
    cfg.params = {7, 2};
    cfg.protocol = ProtocolKind::kWitness;
    cfg.inputs = linear_inputs(7, -1.0, 1.0);
    cfg.fixed_rounds = 6;
    cfg.seed = 1234;
    return run_async(cfg);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.metrics.messages_sent, b.metrics.messages_sent);
  EXPECT_EQ(a.finish_time, b.finish_time);
}

TEST(WitnessEdge, HubStateBounded) {
  // After a full run, the RB hub holds one slot per (iteration, origin) —
  // not per message.
  const SystemParams p{4, 1};
  net::SimNetwork net(p, std::make_unique<sched::RandomScheduler>(2));
  std::vector<witness::WitnessAaProcess*> procs;
  for (ProcessId i = 0; i < 4; ++i) {
    witness::WitnessConfig wc;
    wc.params = p;
    wc.input = static_cast<double>(i);
    wc.iterations = 5;
    auto proc = std::make_unique<witness::WitnessAaProcess>(wc);
    procs.push_back(proc.get());
    net.add_process(std::move(proc));
  }
  net.start();
  net.run_until([&net] { return net.all_correct_output(); });
  ASSERT_TRUE(net.all_correct_output());
}

TEST(WitnessEdge, RunsOnRealThreads) {
  const SystemParams p{4, 1};
  rt::ThreadNetwork net(p);
  const double inputs[] = {0.0, 0.25, 0.75, 1.0};
  const Round iters =
      std::max<Round>(1, rounds_needed(2.0, 1e-3, predicted_factor_witness()));
  for (ProcessId i = 0; i < 4; ++i) {
    witness::WitnessConfig wc;
    wc.params = p;
    wc.input = inputs[i];
    wc.iterations = iters;
    net.add_process(std::make_unique<witness::WitnessAaProcess>(wc));
  }
  ASSERT_TRUE(net.run(std::chrono::seconds(20)));
  const auto outs = net.correct_outputs();
  ASSERT_EQ(outs.size(), 4u);
  const auto [mn, mx] = std::minmax_element(outs.begin(), outs.end());
  EXPECT_LE(*mx - *mn, 1e-3);
  EXPECT_GE(*mn, 0.0);
  EXPECT_LE(*mx, 1.0);
}

TEST(WitnessEdge, SingleIterationIsOneHalving) {
  RunConfig cfg;
  cfg.params = {7, 2};
  cfg.protocol = ProtocolKind::kWitness;
  cfg.inputs = split_inputs(7, 3, 0.0, 1.0);
  cfg.fixed_rounds = 1;
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  // One iteration: outputs within the hull, spread at most half.
  EXPECT_LE(rep.worst_pair_gap, 0.5 + 1e-9);
  EXPECT_TRUE(rep.validity_ok);
}

}  // namespace
}  // namespace apxa
