// Robustness batch: codec fuzzing, byzantine payload injection at the
// network level, collector sweeps, timed crashes, and protocol behavior on
// degenerate inputs.  Everything here is about the library *not breaking*
// when fed garbage or driven at its edges.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/byzantine.hpp"
#include "core/async_byz.hpp"
#include "core/codec.hpp"
#include "core/epsilon_driver.hpp"
#include "core/multidim.hpp"
#include "core/round_engine.hpp"
#include "net/sim.hpp"
#include "sched/random_scheduler.hpp"

namespace apxa {
namespace {

using namespace core;

// ---------------------------------------------------------------------------
// Codec fuzz: random byte strings must decode to nullopt or throw the
// controlled overrun error — never crash, never return half-parsed values
// silently accepted by protocols.
// ---------------------------------------------------------------------------

TEST(CodecFuzz, RandomBytesNeverCrash) {
  Rng rng(0xfadedbeeULL);
  int decoded = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    const std::size_t len = rng.next_below(40);
    Bytes junk(len);
    for (auto& b : junk) b = static_cast<std::byte>(rng.next_below(256));
    try {
      if (decode_round(junk)) ++decoded;
      if (decode_done(junk)) ++decoded;
      if (decode_rb(junk)) ++decoded;
      if (decode_report(junk)) ++decoded;
      if (decode_vec_round(junk)) ++decoded;
    } catch (const std::invalid_argument&) {
      // controlled rejection of truncated varints/payloads
    }
  }
  // Random bytes occasionally form valid messages; that is fine — the point
  // is the absence of crashes and unbounded allocations.
  SUCCEED() << decoded << " random payloads happened to decode";
}

TEST(CodecFuzz, MutatedValidMessagesHandled) {
  Rng rng(17);
  const Bytes valid = encode_round(RoundMsg{1234, 5.678, 9});
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutated = valid;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<std::byte>(rng.next_below(256));
    try {
      (void)decode_round(mutated);
      (void)decode_rb(mutated);
    } catch (const std::invalid_argument&) {
    }
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Network-level garbage injection: a byzantine party spraying raw random
// bytes must not harm safety or liveness of any protocol.
// ---------------------------------------------------------------------------

class GarbageSprayer final : public net::Process {
 public:
  explicit GarbageSprayer(std::uint64_t seed) : rng_(seed) {}

  void on_start(net::Context& ctx) override { spray(ctx); }
  void on_message(net::Context& ctx, ProcessId, BytesView) override {
    if (++heard_ % 3 == 0 && sprays_ < 40) spray(ctx);
  }

 private:
  void spray(net::Context& ctx) {
    ++sprays_;
    for (ProcessId to = 0; to < ctx.params().n; ++to) {
      if (to == ctx.self()) continue;
      Bytes junk(rng_.next_below(24));
      for (auto& b : junk) b = static_cast<std::byte>(rng_.next_below(256));
      ctx.send(to, std::move(junk));
    }
  }

  Rng rng_;
  int heard_ = 0;
  int sprays_ = 0;
};

TEST(GarbageInjection, CrashProtocolUnaffected) {
  const SystemParams p{7, 2};
  net::SimNetwork net(p, std::make_unique<sched::RandomScheduler>(3));
  for (ProcessId i = 0; i < 6; ++i) {
    net.add_process(std::make_unique<RoundAaProcess>(
        crash_aa_config(p, static_cast<double>(i), 6)));
  }
  net.add_process(std::make_unique<GarbageSprayer>(5));
  net.mark_byzantine(6);
  net.start();
  net.run_until([&net] { return net.all_correct_output(); });
  EXPECT_TRUE(net.all_correct_output());
  const auto outs = net.correct_outputs();
  for (double y : outs) {
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 5.0);
  }
}

TEST(GarbageInjection, WitnessProtocolUnaffected) {
  const SystemParams p{7, 2};
  RunConfig cfg;
  cfg.params = p;
  cfg.protocol = ProtocolKind::kWitness;
  cfg.inputs = linear_inputs(7, 0.0, 1.0);
  cfg.fixed_rounds = 8;
  // The noise strategy sends well-formed RB messages with junk values; the
  // sprayer above covers raw bytes.  Use both faults.
  adversary::ByzSpec b;
  b.who = 0;
  b.kind = adversary::ByzKind::kNoise;
  b.lo = -1e9;
  b.hi = 1e9;
  cfg.byz = {b};
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  EXPECT_TRUE(rep.validity_ok);
}

// ---------------------------------------------------------------------------
// Collector sweeps: quorum arithmetic over the whole admissible (n, t) grid.
// ---------------------------------------------------------------------------

class CollectorSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(CollectorSweep, FreezeExactlyAtQuorum) {
  const auto [n, t] = GetParam();
  RoundCollector c(SystemParams{n, t});
  c.add_own(0, 0.0);
  const std::uint32_t quorum = n - t;
  for (std::uint32_t k = 1; k < quorum; ++k) {
    EXPECT_FALSE(c.ready(0)) << "froze early at " << k;
    c.add_remote(k, 0, static_cast<double>(k));
  }
  EXPECT_TRUE(c.ready(0));
  EXPECT_EQ(c.view(0).size(), quorum);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CollectorSweep,
    ::testing::Values(std::pair{3u, 1u}, std::pair{4u, 1u}, std::pair{5u, 2u},
                      std::pair{7u, 3u}, std::pair{10u, 4u}, std::pair{21u, 10u},
                      std::pair{33u, 16u}));

// ---------------------------------------------------------------------------
// Timed crashes and degenerate inputs.
// ---------------------------------------------------------------------------

TEST(TimedCrash, MidRunCrashStillConverges) {
  RunConfig cfg;
  cfg.params = {7, 2};
  cfg.protocol = ProtocolKind::kCrashRound;
  cfg.inputs = linear_inputs(7, 0.0, 1.0);
  cfg.fixed_rounds = 8;
  const auto baseline = run_async(cfg);
  ASSERT_TRUE(baseline.all_output);

  // Crash two parties at virtual times inside the run.
  net::SimNetwork net(cfg.params, std::make_unique<sched::RandomScheduler>(1));
  for (ProcessId i = 0; i < 7; ++i) {
    net.add_process(std::make_unique<RoundAaProcess>(
        crash_aa_config(cfg.params, cfg.inputs[i], 8)));
  }
  net.crash_at_time(1, 2.5);
  net.crash_at_time(5, 4.0);
  net.start();
  net.run_until([&net] { return net.all_correct_output(); });
  EXPECT_TRUE(net.all_correct_output());
  const auto outs = net.correct_outputs();
  EXPECT_EQ(outs.size(), 5u);
  std::vector<double> sorted = outs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_LE(sorted.back() - sorted.front(), 1.0);
}

TEST(Degenerate, IdenticalExtremeInputs) {
  RunConfig cfg;
  cfg.params = {5, 1};
  cfg.protocol = ProtocolKind::kCrashRound;
  cfg.inputs.assign(5, 1e308);  // near DBL_MAX, all equal
  cfg.fixed_rounds = 3;
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  for (double y : rep.outputs) EXPECT_EQ(y, 1e308);
}

TEST(Degenerate, TinySpreadBelowEpsilon) {
  RunConfig cfg;
  cfg.params = {5, 1};
  cfg.protocol = ProtocolKind::kCrashRound;
  cfg.mode = TerminationMode::kAdaptive;
  cfg.epsilon = 1.0;
  cfg.inputs = {0.0, 1e-9, -1e-9, 2e-9, 0.0};
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  EXPECT_TRUE(rep.agreement_ok);
  EXPECT_LE(rep.max_round_reached, 2u);
}

TEST(Degenerate, MinimalSystemN3T1) {
  RunConfig cfg;
  cfg.params = {3, 1};
  cfg.protocol = ProtocolKind::kCrashRound;
  cfg.epsilon = 1e-3;
  cfg.inputs = {0.0, 1.0, 0.25};
  cfg.fixed_rounds = rounds_for_bound(1.0, cfg.epsilon, Averager::kMean, cfg.params);
  cfg.crashes = {adversary::CrashSpec{2, 3, {}}};
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  EXPECT_TRUE(rep.validity_ok);
  EXPECT_TRUE(rep.agreement_ok);
}

// Attack-cap hygiene: attackers stop at max_instances, so even with no
// correct-party termination the message volume is bounded.
TEST(ByzCaps, RoundAttackerBounded) {
  const SystemParams p{4, 1};
  net::SimNetwork net(p, std::make_unique<sched::RandomScheduler>(1));
  adversary::ByzSpec spec;
  spec.who = 3;
  spec.kind = adversary::ByzKind::kExtremeHigh;
  spec.max_instances = 5;
  for (ProcessId i = 0; i < 3; ++i) {
    RoundAaConfig pc = crash_aa_config(p, 0.0, 1);
    pc.mode = TerminationMode::kLive;  // never stops on its own
    net.add_process(std::make_unique<RoundAaProcess>(pc));
  }
  net.add_process(std::make_unique<adversary::ByzRoundProcess>(spec));
  net.mark_byzantine(3);
  net.start();
  // Live correct parties generate unbounded rounds; cap deliveries and check
  // the attacker's send count stayed within 5 rounds x 3 receivers.
  net.run(20'000);
  EXPECT_LE(net.metrics().sent_by[3], 5u * 3u);
}

}  // namespace
}  // namespace apxa
