// Input-family helpers of harness/scenario.hpp: shapes, edge cases and
// determinism.  These families seed every sweep in bench/, so regressions
// here silently skew whole figures.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "harness/scenario.hpp"

namespace apxa::harness {
namespace {

TEST(LinearInputs, EndpointsAndSpacing) {
  const auto v = linear_inputs(5, 2.0, 6.0);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 2.0);
  EXPECT_DOUBLE_EQ(v.back(), 6.0);
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    EXPECT_DOUBLE_EQ(v[i + 1] - v[i], 1.0);
  }
}

TEST(LinearInputs, SinglePartyGetsLo) {
  // n = 1 must not divide by n - 1.
  const auto v = linear_inputs(1, 3.5, 9.0);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 3.5);
}

TEST(LinearInputs, DegenerateRange) {
  const auto v = linear_inputs(4, 1.25, 1.25);
  for (const double x : v) EXPECT_DOUBLE_EQ(x, 1.25);
}

TEST(LinearInputs, RejectsZeroParties) {
  EXPECT_THROW(linear_inputs(0, 0.0, 1.0), std::invalid_argument);
}

TEST(SplitInputs, CountZeroIsAllLo) {
  const auto v = split_inputs(5, 0, -1.0, 1.0);
  ASSERT_EQ(v.size(), 5u);
  for (const double x : v) EXPECT_DOUBLE_EQ(x, -1.0);
}

TEST(SplitInputs, CountNIsAllHi) {
  const auto v = split_inputs(5, 5, -1.0, 1.0);
  for (const double x : v) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(SplitInputs, HighEntriesSitAtTheTopIds) {
  // The hi camp occupies the LAST count_hi ids — the clique scheduler's
  // isolated tail — which is what makes this the lower-bound family.
  const auto v = split_inputs(6, 2, 0.0, 1.0);
  EXPECT_EQ(std::count(v.begin(), v.end(), 1.0), 2);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
  EXPECT_DOUBLE_EQ(v[5], 1.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(SplitInputs, DegenerateRange) {
  const auto v = split_inputs(4, 2, 0.5, 0.5);
  for (const double x : v) EXPECT_DOUBLE_EQ(x, 0.5);
}

TEST(SplitInputs, RejectsCountAboveN) {
  EXPECT_THROW(split_inputs(4, 5, 0.0, 1.0), std::invalid_argument);
}

TEST(RandomInputs, DeterministicUnderFixedSeed) {
  Rng a(42), b(42);
  const auto va = random_inputs(a, 16, -2.0, 2.0);
  const auto vb = random_inputs(b, 16, -2.0, 2.0);
  EXPECT_EQ(va, vb);

  Rng c(43);
  const auto vc = random_inputs(c, 16, -2.0, 2.0);
  EXPECT_NE(va, vc);
}

TEST(RandomInputs, StaysInRange) {
  Rng rng(7);
  const auto v = random_inputs(rng, 64, 1.0, 3.0);
  ASSERT_EQ(v.size(), 64u);
  for (const double x : v) {
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 3.0);
  }
}

TEST(RandomVectorInputs, ShapeRangeAndDeterminism) {
  Rng a(5), b(5);
  const auto va = random_vector_inputs(a, 6, 3, -1.0, 1.0);
  const auto vb = random_vector_inputs(b, 6, 3, -1.0, 1.0);
  ASSERT_EQ(va.size(), 6u);
  for (const auto& row : va) {
    ASSERT_EQ(row.size(), 3u);
    for (const double x : row) {
      EXPECT_GE(x, -1.0);
      EXPECT_LE(x, 1.0);
    }
  }
  EXPECT_EQ(va, vb);
}

TEST(CornerSplitInputs, CornersAndEdgeCounts) {
  const auto v = corner_split_inputs(5, 2, 2, 0.0, 1.0);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0], (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(v[4], (std::vector<double>{1.0, 1.0}));
  EXPECT_EQ(v[3], (std::vector<double>{1.0, 1.0}));

  for (const auto& row : corner_split_inputs(3, 2, 0, 0.0, 1.0)) {
    EXPECT_EQ(row, (std::vector<double>{0.0, 0.0}));
  }
  for (const auto& row : corner_split_inputs(3, 2, 3, 0.0, 1.0)) {
    EXPECT_EQ(row, (std::vector<double>{1.0, 1.0}));
  }
  EXPECT_THROW(corner_split_inputs(3, 2, 4, 0.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace apxa::harness
