// geom/safe_area unit coverage: the LP point-in-hull test, removal
// robustness, Vaidya-Garg safe-area membership, Tverberg/Radon partition
// points, support certification and the safe-area midpoint averaging rule —
// including the degenerate cases the protocol relies on (d = 1 reducing to
// the trimmed-range midpoint, collinear point sets, t = 0 identities).
#include <gtest/gtest.h>

#include <vector>

#include "core/multiset_ops.hpp"
#include "geom/safe_area.hpp"

namespace apxa::geom {
namespace {

using Points = std::vector<std::vector<double>>;

// --- in_convex_hull ---------------------------------------------------------

TEST(InConvexHull, TriangleInteriorAndExterior) {
  const Points tri = {{0.0, 0.0}, {4.0, 0.0}, {0.0, 4.0}};
  EXPECT_TRUE(in_convex_hull(std::vector<double>{1.0, 1.0}, tri));
  EXPECT_TRUE(in_convex_hull(std::vector<double>{2.0, 2.0}, tri));  // edge
  EXPECT_FALSE(in_convex_hull(std::vector<double>{2.1, 2.1}, tri));
  EXPECT_FALSE(in_convex_hull(std::vector<double>{-0.5, 1.0}, tri));
  // Vertices are in the hull.
  for (const auto& v : tri) EXPECT_TRUE(in_convex_hull(v, tri));
}

TEST(InConvexHull, CollinearPoints) {
  // Degenerate hull: a segment in R^2.  Points on the segment are inside,
  // points off the line or beyond the ends are not.
  const Points seg = {{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_TRUE(in_convex_hull(std::vector<double>{1.5, 1.5}, seg));
  EXPECT_TRUE(in_convex_hull(std::vector<double>{3.0, 3.0}, seg));
  EXPECT_FALSE(in_convex_hull(std::vector<double>{3.5, 3.5}, seg));
  EXPECT_FALSE(in_convex_hull(std::vector<double>{1.5, 1.6}, seg));
}

TEST(InConvexHull, OneDimension) {
  const Points pts = {{1.0}, {3.0}, {2.0}};
  EXPECT_TRUE(in_convex_hull(std::vector<double>{2.5}, pts));
  EXPECT_FALSE(in_convex_hull(std::vector<double>{0.9}, pts));
  EXPECT_FALSE(in_convex_hull(std::vector<double>{3.1}, pts));
}

TEST(InConvexHull, DuplicatedPoints) {
  // Duplicates must not break the LP (degenerate columns).
  const Points pts = {{1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}, {2.0, 2.0}};
  EXPECT_TRUE(in_convex_hull(std::vector<double>{1.5, 1.5}, pts));
  EXPECT_FALSE(in_convex_hull(std::vector<double>{1.5, 1.4}, pts));
}

// --- removal robustness and the safe area -----------------------------------

TEST(RemovalRobustness, CentroidOfSquareSurvivesOneRemoval) {
  const Points sq = {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  const std::vector<double> c{0.5, 0.5};
  // Removing any single corner keeps the center in the remaining triangle;
  // removing two opposite corners leaves a segment that misses it only when
  // the two REMAINING corners are adjacent — {(0,0),(1,0)} say — so level 2
  // fails.
  EXPECT_EQ(removal_robustness(c, sq, 1), 1);
  EXPECT_EQ(removal_robustness(c, sq, 2), 1);
  // A vertex is not robust to its own removal.
  EXPECT_EQ(removal_robustness(sq[0], sq, 1), 0);
  // A point outside the hull reports -1.
  EXPECT_EQ(removal_robustness(std::vector<double>{2.0, 2.0}, sq, 1), -1);
}

TEST(SafeArea, TZeroIsPlainHullMembership) {
  const Points tri = {{0.0, 0.0}, {4.0, 0.0}, {0.0, 4.0}};
  EXPECT_TRUE(in_safe_area(std::vector<double>{1.0, 1.0}, tri, 0));
  EXPECT_FALSE(in_safe_area(std::vector<double>{3.0, 3.0}, tri, 0));
}

TEST(SafeArea, MatchesRemovalRobustnessWhenEnumerable) {
  // 3x3 grid, t = 1: the safe area is the intersection of all 8-subset
  // hulls; the grid center is in every one of them.
  Points grid;
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      grid.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  EXPECT_TRUE(in_safe_area(std::vector<double>{1.0, 1.0}, grid, 1));
  // A corner leaves the hull as soon as it is removed itself.
  EXPECT_FALSE(in_safe_area(std::vector<double>{0.0, 0.0}, grid, 1));
}

// --- Tverberg / Radon partition points --------------------------------------

TEST(TverbergPoint, RIsOneReturnsCentroid) {
  const Points pts = {{0.0, 0.0}, {2.0, 0.0}, {1.0, 3.0}};
  const auto tv = tverberg_point(pts, 1);
  ASSERT_TRUE(tv.has_value());
  EXPECT_NEAR((*tv)[0], 1.0, 1e-12);
  EXPECT_NEAR((*tv)[1], 1.0, 1e-12);
}

TEST(TverbergPoint, GridPartitionPointIsRobust) {
  Points grid;
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      grid.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  // m = 9 >= (d+1)t + 1 with t = 1, d = 2: a 2-partition (Radon) point
  // exists, and a point in the hulls of 2 disjoint groups survives any
  // single removal.
  const auto tv = tverberg_point(grid, 2);
  ASSERT_TRUE(tv.has_value());
  EXPECT_GE(removal_robustness(*tv, grid, 1), 1);
}

TEST(RadonPoint, CertifiesLevelOneByConstruction) {
  const Points pts = {{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}, {2.0, 2.0},
                      {1.0, 1.0}, {5.0, 5.0}};
  const auto rp = radon_point(pts);
  ASSERT_TRUE(rp.has_value());
  EXPECT_GE(removal_robustness(*rp, pts, 1), 1);
}

TEST(RadonPoint, TooFewPointsIsNullopt) {
  const Points pts = {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};  // m = 3 < d+2
  EXPECT_FALSE(radon_point(pts).has_value());
}

// --- support counts ---------------------------------------------------------

TEST(SupportCounts, CountsNearDuplicates) {
  const Points pts = {{1.0, 1.0}, {1.0, 1.0}, {1.0 + 1e-12, 1.0},
                      {2.0, 2.0}};
  const auto s = support_counts(pts);
  EXPECT_EQ(s[0], 3u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s[2], 3u);
  EXPECT_EQ(s[3], 1u);
}

// --- trimmed centroid -------------------------------------------------------

TEST(TrimmedCentroid, TZeroIsCentroid) {
  const Points pts = {{0.0, 0.0}, {2.0, 0.0}, {1.0, 3.0}};
  const auto c = trimmed_centroid(pts, 0);
  EXPECT_NEAR(c[0], 1.0, 1e-12);
  EXPECT_NEAR(c[1], 1.0, 1e-12);
}

TEST(TrimmedCentroid, DropsFarOutlier) {
  // Five clustered points plus one at 1e3: the outlier must not survive.
  const Points pts = {{0.0, 0.0}, {0.1, 0.0},     {0.0, 0.1},
                      {0.1, 0.1}, {0.05, 0.05},   {1e3, 1e3}};
  const auto c = trimmed_centroid(pts, 1);
  EXPECT_LE(c[0], 0.2);
  EXPECT_LE(c[1], 0.2);
}

TEST(TrimmedCentroid, TrustedPointsNeverDrop) {
  // The trusted far point survives both drop stages; the untrusted copy of
  // it does not have to.
  const Points pts = {{0.0, 0.0}, {0.1, 0.0}, {0.0, 0.1},
                      {0.1, 0.1}, {10.0, 10.0}};
  const std::vector<std::uint8_t> trusted = {0, 0, 0, 0, 1};
  const auto c = trimmed_centroid(pts, 1, trusted);
  // 10.0 contributes to the kept average.
  EXPECT_GT(c[0], 1.0);
}

TEST(TrimmedCentroid, DegenerateViewKeepsCertifiedOnly) {
  // m = 3 points in R^2 (m <= d + 1): a simplex with no interior.  Only the
  // trusted entry is kept.
  const Points pts = {{1.0, 2.0}, {7.0, -1.0}, {-4.0, 5.0}};
  const std::vector<std::uint8_t> trusted = {1, 0, 0};
  const auto c = trimmed_centroid(pts, 1, trusted);
  EXPECT_NEAR(c[0], 1.0, 1e-12);
  EXPECT_NEAR(c[1], 2.0, 1e-12);
}

// --- safe midpoint ----------------------------------------------------------

TEST(SafeMidpoint, OneDimensionIsTrimmedRangeMidpoint) {
  // d = 1 closed form: midpoint of [v_(t), v_(m-1-t)] — exactly the
  // byzantine halving rule midpoint(reduce_t(V)).
  const Points pts = {{5.0}, {-100.0}, {1.0}, {2.0}, {100.0}};
  const auto sp = safe_midpoint(pts, 1);
  EXPECT_TRUE(sp.exact);
  EXPECT_EQ(sp.level, 1u);
  const double expected = core::apply_averager(
      core::Averager::kReduceMidpoint, {5.0, -100.0, 1.0, 2.0, 100.0}, 1);
  EXPECT_DOUBLE_EQ(sp.point[0], expected);
}

TEST(SafeMidpoint, TZeroReturnsCentroid) {
  const Points pts = {{0.0, 0.0}, {2.0, 0.0}, {1.0, 3.0}};
  const auto sp = safe_midpoint(pts, 0);
  EXPECT_TRUE(sp.exact);
  EXPECT_EQ(sp.level, 0u);
  EXPECT_NEAR(sp.point[0], 1.0, 1e-12);
  EXPECT_NEAR(sp.point[1], 1.0, 1e-12);
}

TEST(SafeMidpoint, CertifiesOnWellSpreadView) {
  // 3x3 grid plus a forged far corner, t = 1: m = 10 >= (d+2)t + 1, so a
  // certified safe-area point exists and must be found and certified.
  Points view;
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      view.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  view.push_back({10.0, 10.0});
  const auto sp = safe_midpoint(view, 1);
  EXPECT_TRUE(sp.exact);
  EXPECT_EQ(sp.level, 1u);
  EXPECT_TRUE(in_safe_area(sp.point, view, 1));
}

TEST(SafeMidpoint, SupportedEchoIsAdopted) {
  // A value echoed by t+1 = 2 entries has an honest contributor; with the
  // rest of the view scattered, the rule adopts (an average involving) it
  // and reports the adoption as certified.
  const Points view = {{1.0, 1.0}, {1.0, 1.0}, {4.0, -3.0}, {-2.0, 5.0},
                       {0.0, 0.0}};
  const auto sp = safe_midpoint(view, 1);
  EXPECT_TRUE(sp.exact);
  EXPECT_EQ(sp.level, 1u);
  // The supported echo is among the certified points averaged; with the
  // grid above it is the only supported cluster, and any certified result
  // stays inside the view hull.
  EXPECT_TRUE(in_convex_hull(sp.point, view));
}

TEST(SafeMidpoint, FallbackStaysInViewHull) {
  // m = 5 < (d+2)t + 1 for d = 2, t = 2: certification is out of reach and
  // the rule falls back to the trimmed centroid — a convex combination of
  // the view, reported as inexact.
  const Points view = {{0.0, 0.0}, {1.0, 0.2}, {0.2, 1.0}, {0.9, 0.9},
                       {0.5, 0.4}};
  const auto sp = safe_midpoint(view, 2);
  EXPECT_FALSE(sp.exact);
  EXPECT_TRUE(in_convex_hull(sp.point, view));
}

}  // namespace
}  // namespace apxa::geom
