// RecordingScheduler: execution logs, delay audits, drop accounting.
#include <gtest/gtest.h>

#include <memory>

#include "core/async_byz.hpp"
#include "net/sim.hpp"
#include "sched/random_scheduler.hpp"
#include "sched/recording_scheduler.hpp"

namespace apxa::sched {
namespace {

TEST(Recording, CapturesEverySendAndDelivery) {
  const SystemParams p{4, 1};
  auto rec = std::make_unique<RecordingScheduler>(
      std::make_unique<RandomScheduler>(7));
  RecordingScheduler* handle = rec.get();

  net::SimNetwork net(p, std::move(rec));
  for (ProcessId i = 0; i < 4; ++i) {
    net.add_process(std::make_unique<core::RoundAaProcess>(
        core::crash_aa_config(p, static_cast<double>(i), 3)));
  }
  net.start();
  net.run();

  // 3 rounds x 4 parties x 3 receivers.
  EXPECT_EQ(handle->sends().size(), 36u);
  EXPECT_EQ(handle->delivers().size(), 36u);
  EXPECT_EQ(handle->undelivered(), 0u);
  EXPECT_LE(handle->max_delay(), 1.0);
  EXPECT_GT(handle->max_delay(), 0.0);
  for (const auto& s : handle->sends()) {
    EXPECT_NE(s.from, s.to);
    EXPECT_GT(s.payload_bytes, 0u);
  }
}

TEST(Recording, CountsDropsAtCrashedReceivers) {
  const SystemParams p{4, 1};
  auto rec = std::make_unique<RecordingScheduler>(
      std::make_unique<RandomScheduler>(7));
  RecordingScheduler* handle = rec.get();

  net::SimNetwork net(p, std::move(rec));
  for (ProcessId i = 0; i < 4; ++i) {
    net.add_process(std::make_unique<core::RoundAaProcess>(
        core::crash_aa_config(p, static_cast<double>(i), 2)));
  }
  net.crash_at_time(3, 0.0);  // party 3 never receives anything
  net.start();
  net.run();
  EXPECT_GT(handle->undelivered(), 0u);
  for (const auto& d : handle->delivers()) EXPECT_NE(d.to, 3u);
}

TEST(Recording, SequencesAreMonotoneInLog) {
  const SystemParams p{3, 1};
  auto rec = std::make_unique<RecordingScheduler>(
      std::make_unique<RandomScheduler>(1));
  RecordingScheduler* handle = rec.get();
  net::SimNetwork net(p, std::move(rec));
  for (ProcessId i = 0; i < 3; ++i) {
    net.add_process(std::make_unique<core::RoundAaProcess>(
        core::crash_aa_config(p, 0.5, 2)));
  }
  net.start();
  net.run();
  for (std::size_t i = 1; i < handle->sends().size(); ++i) {
    EXPECT_GT(handle->sends()[i].seq, handle->sends()[i - 1].seq);
  }
}

TEST(Recording, RejectsNullInner) {
  EXPECT_THROW(RecordingScheduler(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace apxa::sched
