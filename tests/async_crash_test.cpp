// End-to-end tests of the crash-model round protocol (the paper's headline):
// validity, eps-agreement, liveness under crashes, round complexity, and the
// guaranteed per-round convergence factor.
#include <gtest/gtest.h>

#include <cmath>

#include "core/async_byz.hpp"
#include "core/bounds.hpp"
#include "core/epsilon_driver.hpp"

namespace apxa::core {
namespace {

RunConfig base_config(std::uint32_t n, std::uint32_t t, double eps = 1e-3) {
  RunConfig cfg;
  cfg.params = {n, t};
  cfg.protocol = ProtocolKind::kCrashRound;
  cfg.averager = Averager::kMean;
  cfg.mode = TerminationMode::kFixedRounds;
  cfg.epsilon = eps;
  return cfg;
}

TEST(CrashAa, CommonInputImmediateStability) {
  auto cfg = base_config(4, 1);
  cfg.inputs = {5.0, 5.0, 5.0, 5.0};
  cfg.fixed_rounds = 3;
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  for (double y : rep.outputs) EXPECT_EQ(y, 5.0);
  EXPECT_TRUE(rep.validity_ok);
  EXPECT_TRUE(rep.agreement_ok);
}

TEST(CrashAa, ZeroRoundsOutputsInputs) {
  auto cfg = base_config(4, 1);
  cfg.inputs = {1.0, 2.0, 3.0, 4.0};
  cfg.fixed_rounds = 0;
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  EXPECT_EQ(rep.outputs, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  EXPECT_EQ(rep.metrics.messages_sent, 0u);
}

TEST(CrashAa, ConvergesToEpsilonFaultFree) {
  auto cfg = base_config(7, 2, 1e-4);
  cfg.inputs = linear_inputs(7, 0.0, 1.0);
  cfg.fixed_rounds = rounds_for_bound(1.0, cfg.epsilon, Averager::kMean, cfg.params);
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  EXPECT_TRUE(rep.validity_ok);
  EXPECT_TRUE(rep.agreement_ok) << "gap " << rep.worst_pair_gap;
}

TEST(CrashAa, RoundComplexityMatchesBudget) {
  auto cfg = base_config(7, 2);
  cfg.inputs = linear_inputs(7, 0.0, 1.0);
  cfg.fixed_rounds = 6;
  const auto rep = run_async(cfg);
  // Every round takes at most Delta = 1 of virtual time.
  EXPECT_LE(rep.finish_time, 6.0 + 1e-9);
  EXPECT_EQ(rep.max_round_reached, 6u);
}

TEST(CrashAa, MessageComplexityQuadraticPerRound) {
  auto cfg = base_config(10, 3);
  cfg.inputs = linear_inputs(10, 0.0, 1.0);
  cfg.fixed_rounds = 5;
  const auto rep = run_async(cfg);
  // n(n-1) messages per round exactly, fault-free.
  EXPECT_EQ(rep.metrics.messages_sent, 10u * 9u * 5u);
}

TEST(CrashAa, SurvivesMaxCrashes) {
  auto cfg = base_config(7, 3);
  cfg.inputs = linear_inputs(7, -2.0, 2.0);
  cfg.fixed_rounds = rounds_for_bound(2.0, cfg.epsilon, Averager::kMean, cfg.params);
  Rng rng(11);
  cfg.crashes = adversary::random_crashes(rng, cfg.params, 3, cfg.fixed_rounds);
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  EXPECT_TRUE(rep.validity_ok);
  EXPECT_TRUE(rep.agreement_ok) << "gap " << rep.worst_pair_gap;
}

TEST(CrashAa, PartialMulticastCrashIsHandled) {
  auto cfg = base_config(5, 2);
  cfg.inputs = {0.0, 0.0, 1.0, 1.0, 0.5};
  cfg.fixed_rounds = rounds_for_bound(1.0, cfg.epsilon, Averager::kMean, cfg.params);
  cfg.crashes = {adversary::partial_multicast_crash(cfg.params, 0, 1, {1}),
                 adversary::partial_multicast_crash(cfg.params, 4, 0, {3})};
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  EXPECT_TRUE(rep.validity_ok);
  EXPECT_TRUE(rep.agreement_ok);
}

TEST(CrashAa, SpreadShrinksMonotonically) {
  auto cfg = base_config(9, 2);
  cfg.inputs = linear_inputs(9, 0.0, 8.0);
  cfg.fixed_rounds = 8;
  const auto rep = run_async(cfg);
  ASSERT_GE(rep.spread_by_round.size(), 2u);
  for (std::size_t r = 0; r + 1 < rep.spread_by_round.size(); ++r) {
    EXPECT_LE(rep.spread_by_round[r + 1], rep.spread_by_round[r] + 1e-12);
  }
}

TEST(CrashAa, GuaranteedFactorHoldsPerRound) {
  // Every observed per-round factor must be at least the guaranteed
  // K = (n - t)/t, across schedulers and seeds.
  for (const SchedKind sched :
       {SchedKind::kRandom, SchedKind::kFifo, SchedKind::kGreedySplit}) {
    auto cfg = base_config(10, 3);
    cfg.inputs = split_inputs(10, 5, 0.0, 1.0);
    cfg.fixed_rounds = 6;
    cfg.sched = sched;
    cfg.seed = 21;
    const auto rep = run_async(cfg);
    const double k = predicted_factor_crash_async_mean(10, 3);
    for (double f : rep.round_factors) {
      EXPECT_GE(f, k - 1e-9) << "scheduler " << static_cast<int>(sched);
    }
  }
}

TEST(CrashAa, OutputsDeterministicAcrossReplays) {
  auto cfg = base_config(6, 2);
  cfg.inputs = linear_inputs(6, 0.0, 1.0);
  cfg.fixed_rounds = 4;
  cfg.seed = 99;
  const auto a = run_async(cfg);
  const auto b = run_async(cfg);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.metrics.messages_sent, b.metrics.messages_sent);
  EXPECT_EQ(a.finish_time, b.finish_time);
}

TEST(CrashAa, LiveModeNeverOutputs) {
  auto cfg = base_config(5, 1);
  cfg.inputs = linear_inputs(5, 0.0, 1.0);
  cfg.mode = TerminationMode::kLive;
  cfg.fixed_rounds = 10;  // observation horizon
  const auto rep = run_async(cfg);
  EXPECT_EQ(rep.status, net::RunStatus::kPredicateSatisfied);
  EXPECT_TRUE(rep.outputs.empty());
  EXPECT_GE(rep.max_round_reached, 10u);
}

TEST(CrashAa, MedianRuleAlsoConverges) {
  auto cfg = base_config(9, 2, 1e-3);
  cfg.averager = Averager::kMedian;
  cfg.inputs = linear_inputs(9, 0.0, 1.0);
  cfg.fixed_rounds = 30;  // median has no guaranteed factor; use plenty
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  EXPECT_TRUE(rep.validity_ok);
}

TEST(CrashAa, ResilienceGuard) {
  auto cfg = base_config(4, 2);  // n = 2t: rejected
  cfg.inputs = {0, 0, 0, 0};
  cfg.fixed_rounds = 1;
  EXPECT_THROW(run_async(cfg), std::invalid_argument);
}

TEST(CrashAa, InputSizeGuard) {
  auto cfg = base_config(4, 1);
  cfg.inputs = {0, 0};  // wrong size
  cfg.fixed_rounds = 1;
  EXPECT_THROW(run_async(cfg), std::invalid_argument);
}

TEST(CrashAa, NegativeAndLargeInputs) {
  auto cfg = base_config(7, 2, 1e-2);
  cfg.inputs = {-1e6, 1e6, 0.0, 2.5, -2.5, 1e5, -1e5};
  cfg.fixed_rounds = rounds_for_bound(1e6, cfg.epsilon, Averager::kMean, cfg.params);
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  EXPECT_TRUE(rep.validity_ok);
  EXPECT_TRUE(rep.agreement_ok) << rep.worst_pair_gap;
}

// Property sweep: validity + agreement hold for every (n, t) pair, scheduler
// and seed combination.
struct SweepParam {
  std::uint32_t n, t;
  SchedKind sched;
  std::uint64_t seed;
};

class CrashSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CrashSweep, ValidityAndAgreement) {
  const auto [n, t, sched, seed] = GetParam();
  Rng rng(seed);
  RunConfig cfg = base_config(n, t, 1e-3);
  cfg.inputs = random_inputs(rng, n, -5.0, 5.0);
  cfg.fixed_rounds = rounds_for_bound(5.0, cfg.epsilon, Averager::kMean, cfg.params);
  cfg.sched = sched;
  cfg.seed = seed;
  const std::uint32_t crash_count = rng.next_below(t + 1);
  cfg.crashes = adversary::random_crashes(rng, cfg.params,
                                          static_cast<std::uint32_t>(crash_count),
                                          cfg.fixed_rounds);
  const auto rep = run_async(cfg);
  EXPECT_TRUE(rep.all_output);
  EXPECT_TRUE(rep.validity_ok);
  EXPECT_TRUE(rep.agreement_ok) << "n=" << n << " t=" << t << " gap "
                                << rep.worst_pair_gap;
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> ps;
  const std::pair<std::uint32_t, std::uint32_t> systems[] = {
      {3, 1}, {4, 1}, {5, 2}, {7, 3}, {10, 3}, {13, 4}};
  const SchedKind scheds[] = {SchedKind::kRandom, SchedKind::kFifo,
                              SchedKind::kGreedySplit};
  std::uint64_t seed = 1;
  for (auto [n, t] : systems) {
    for (auto s : scheds) {
      ps.push_back({n, t, s, seed++});
      ps.push_back({n, t, s, seed++});
    }
  }
  return ps;
}

INSTANTIATE_TEST_SUITE_P(Systems, CrashSweep, ::testing::ValuesIn(sweep_params()));

}  // namespace
}  // namespace apxa::core
