// Parallel sweep runner: same seeds => same aggregate, regardless of worker
// count or completion order.
#include <gtest/gtest.h>

#include <vector>

#include "harness/run_many.hpp"

namespace apxa::harness {
namespace {

std::vector<RunConfig> sample_grid() {
  std::vector<RunConfig> grid;
  for (const auto sched : {SchedKind::kRandom, SchedKind::kGreedySplit}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      RunConfig cfg;
      cfg.params = {7, 2};
      cfg.protocol = ProtocolKind::kCrashRound;
      cfg.fixed_rounds = 6;
      cfg.epsilon = 1e-2;
      cfg.inputs = linear_inputs(7, 0.0, 1.0);
      cfg.sched = sched;
      cfg.seed = seed;
      grid.push_back(std::move(cfg));
    }
  }
  return grid;
}

void expect_reports_equal(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.all_output, b.all_output);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.validity_ok, b.validity_ok);
  EXPECT_EQ(a.agreement_ok, b.agreement_ok);
  EXPECT_EQ(a.worst_pair_gap, b.worst_pair_gap);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.metrics.messages_sent, b.metrics.messages_sent);
  EXPECT_EQ(a.metrics.messages_delivered, b.metrics.messages_delivered);
  EXPECT_EQ(a.spread_by_round, b.spread_by_round);
  EXPECT_EQ(a.round_factors, b.round_factors);
}

TEST(RunMany, MatchesSerialExecution) {
  const auto grid = sample_grid();
  const auto parallel = run_many(grid, {.workers = 4});
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    expect_reports_equal(parallel[i], run(grid[i]));
  }
}

TEST(RunMany, SameSeedsSameAggregateAcrossWorkerCounts) {
  const auto grid = sample_grid();
  const auto one = run_many(grid, {.workers = 1});
  const auto four = run_many(grid, {.workers = 4});
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    expect_reports_equal(one[i], four[i]);
  }
}

TEST(RunMany, PreservesInputOrder) {
  std::vector<RunConfig> grid;
  for (std::uint32_t n = 4; n <= 9; ++n) {
    RunConfig cfg;
    cfg.params = {n, 1};
    cfg.fixed_rounds = 3;
    cfg.inputs = linear_inputs(n, 0.0, 1.0);
    grid.push_back(std::move(cfg));
  }
  const auto reports = run_many(grid, {.workers = 3});
  ASSERT_EQ(reports.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(reports[i].outputs.size(), grid[i].params.n) << "slot " << i;
  }
}

TEST(RunMany, EmptySweep) {
  EXPECT_TRUE(run_many(std::vector<RunConfig>{}).empty());
  EXPECT_TRUE(run_many(std::vector<VectorRunConfig>{}).empty());
}

TEST(RunMany, PropagatesErrors) {
  auto grid = sample_grid();
  grid[2].inputs.pop_back();  // invalid: |inputs| != n
  EXPECT_THROW(run_many(grid, {.workers = 4}), std::invalid_argument);
}

TEST(RunMany, WorkerCountResolution) {
  EXPECT_EQ(sweep_workers(/*jobs=*/8, /*requested=*/3), 3u);
  EXPECT_EQ(sweep_workers(/*jobs=*/2, /*requested=*/8), 2u);  // clamp to jobs
  EXPECT_GE(sweep_workers(/*jobs=*/8, /*requested=*/0), 1u);  // auto
}

}  // namespace
}  // namespace apxa::harness
